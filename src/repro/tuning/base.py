"""Shared types and sequence plumbing for all prompt-tuning methods."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..ag import Tensor
from ..data.lamp import Sample
from ..llm.tokenizer import Tokenizer

__all__ = ["VirtualTokens", "PromptArtifact", "TuningConfig",
           "build_training_ids", "TrainingBatch", "build_training_batch",
           "mean_loss", "IGNORE_INDEX"]

IGNORE_INDEX = -100


@dataclass
class VirtualTokens:
    """A trained set of virtual tokens (the OVT when trained per-sample).

    ``matrix`` has shape (n_tokens, d_model) — the soft prompt prepended to
    input embeddings at inference time.
    """

    matrix: np.ndarray
    source: Sample | None = None
    domain: str = ""

    def __post_init__(self):
        self.matrix = np.asarray(self.matrix, dtype=np.float32)
        if self.matrix.ndim != 2:
            raise ValueError("virtual tokens must be a (n_tokens, d_model) matrix")

    @property
    def n_tokens(self) -> int:
        return self.matrix.shape[0]

    @property
    def d_model(self) -> int:
        return self.matrix.shape[1]

    def copy(self) -> "VirtualTokens":
        return VirtualTokens(self.matrix.copy(), self.source, self.domain)


@dataclass
class PromptArtifact:
    """What a tuning method produces: either a soft prompt, per-layer KV
    prefixes, or both (DEPT additionally carries an embedding delta)."""

    soft_prompt: VirtualTokens | None = None
    prefix_kv: list[tuple[np.ndarray, np.ndarray]] | None = None
    embedding_delta: np.ndarray | None = None
    method: str = ""


@dataclass(frozen=True)
class TuningConfig:
    """Hyper-parameters shared by every prompt-tuning method.

    The paper uses HuggingFace prompt tuning with Adam at lr=1e-4 and a
    scheduler; the default lr here is scaled up for the much smaller
    stand-in models.
    """

    n_virtual_tokens: int = 8
    steps: int = 60
    lr: float = 0.05
    weight_decay: float = 0.0
    grad_clip: float = 1.0
    warmup_fraction: float = 0.1
    anchor_weight: float = 10.0  # L2 pull toward the embedding-space init
    seed: int = 0
    # One padded batched forward per optimizer step; False falls back to the
    # loss-equivalent per-sample reference loop (kept for tests/debugging).
    batched: bool = True

    def __post_init__(self):
        if self.n_virtual_tokens <= 0:
            raise ValueError("n_virtual_tokens must be positive")
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if self.anchor_weight < 0:
            raise ValueError("anchor_weight must be non-negative")


# A hook applied to the virtual-token tensor inside the forward pass.
# Noise-aware training supplies one; plain training uses identity.
PromptTransform = Callable[[Tensor], Tensor]


def mean_loss(losses: list[Tensor]) -> Tensor:
    """Mean of per-sample scalar losses — the ``batched=False`` reference
    semantics every batched loss must reproduce."""
    total = losses[0]
    for item in losses[1:]:
        total = total + item
    return total * (1.0 / len(losses))


def build_training_ids(
    sample: Sample, tokenizer: Tokenizer,
) -> tuple[np.ndarray, np.ndarray]:
    """Token ids and loss mask for one training sample.

    Returns ``(full_ids, loss_positions)`` where ``full_ids`` is
    input + target + EOS and ``loss_positions[j]`` is True when token j
    belongs to the supervised continuation (target or EOS).
    """
    input_ids = tokenizer.encode(sample.input_text)
    target_ids = tokenizer.encode(sample.target_text)
    if input_ids.size == 0 or target_ids.size == 0:
        raise ValueError("sample has empty input or target text")
    full = np.concatenate([input_ids, target_ids, [tokenizer.eos_id]])
    loss_positions = np.zeros(full.size, dtype=bool)
    loss_positions[input_ids.size:] = True
    return full, loss_positions


def make_target_vector(full_ids: np.ndarray, loss_positions: np.ndarray,
                       prompt_len: int) -> np.ndarray:
    """Next-token targets for a sequence preceded by ``prompt_len`` virtual
    tokens.

    The model input is ``[prompt, full_ids[:-1]]`` (length
    ``prompt_len + T - 1``); position p predicts ``full_ids[p - prompt_len
    + 1]``.  Unsupervised positions get :data:`IGNORE_INDEX`.
    """
    full_ids = np.asarray(full_ids)
    loss_positions = np.asarray(loss_positions, dtype=bool)
    length = prompt_len + full_ids.size - 1
    targets = np.full(length, IGNORE_INDEX, dtype=np.int64)
    supervised = np.nonzero(loss_positions[1:])[0] + 1
    targets[prompt_len + supervised - 1] = full_ids[supervised]
    return targets


@dataclass
class TrainingBatch:
    """A minibatch padded to a common length for one batched forward.

    ``input_ids`` is (B, L) right-padded with the tokenizer's pad id;
    ``key_padding_mask`` is (B, L), True at padded slots; ``targets`` is
    (B, prompt_len + L) with :data:`IGNORE_INDEX` at prompt, unsupervised
    and padded positions, aligned with the logits of a forward over
    ``[prompt, input_ids]``.
    """

    input_ids: np.ndarray
    key_padding_mask: np.ndarray
    targets: np.ndarray
    lengths: np.ndarray
    prompt_len: int

    @property
    def batch_size(self) -> int:
        return self.input_ids.shape[0]


def build_training_batch(samples: list[Sample], tokenizer: Tokenizer,
                         prompt_len: int = 0) -> TrainingBatch:
    """Pad a minibatch of samples for one batched training forward."""
    if not samples:
        raise ValueError("training batch needs at least one sample")
    if prompt_len < 0:
        raise ValueError("prompt_len must be non-negative")
    encoded = [build_training_ids(sample, tokenizer) for sample in samples]
    lengths = np.array([ids.size - 1 for ids, _ in encoded], dtype=np.int64)
    batch, max_len = len(encoded), int(lengths.max())
    input_ids = np.full((batch, max_len), tokenizer.pad_id, dtype=np.int64)
    key_padding_mask = np.ones((batch, max_len), dtype=bool)
    targets = np.full((batch, prompt_len + max_len), IGNORE_INDEX,
                      dtype=np.int64)
    for i, (full_ids, loss_positions) in enumerate(encoded):
        t = full_ids.size - 1
        input_ids[i, :t] = full_ids[:-1]
        key_padding_mask[i, :t] = False
        targets[i, :prompt_len + t] = make_target_vector(
            full_ids, loss_positions, prompt_len)
    return TrainingBatch(input_ids, key_padding_mask, targets, lengths,
                         prompt_len)
