"""Shared types and sequence plumbing for all prompt-tuning methods."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..ag import Tensor
from ..data.lamp import Sample
from ..llm.tokenizer import Tokenizer

__all__ = ["VirtualTokens", "PromptArtifact", "TuningConfig",
           "build_training_ids", "IGNORE_INDEX"]

IGNORE_INDEX = -100


@dataclass
class VirtualTokens:
    """A trained set of virtual tokens (the OVT when trained per-sample).

    ``matrix`` has shape (n_tokens, d_model) — the soft prompt prepended to
    input embeddings at inference time.
    """

    matrix: np.ndarray
    source: Sample | None = None
    domain: str = ""

    def __post_init__(self):
        self.matrix = np.asarray(self.matrix, dtype=np.float32)
        if self.matrix.ndim != 2:
            raise ValueError("virtual tokens must be a (n_tokens, d_model) matrix")

    @property
    def n_tokens(self) -> int:
        return self.matrix.shape[0]

    @property
    def d_model(self) -> int:
        return self.matrix.shape[1]

    def copy(self) -> "VirtualTokens":
        return VirtualTokens(self.matrix.copy(), self.source, self.domain)


@dataclass
class PromptArtifact:
    """What a tuning method produces: either a soft prompt, per-layer KV
    prefixes, or both (DEPT additionally carries an embedding delta)."""

    soft_prompt: VirtualTokens | None = None
    prefix_kv: list[tuple[np.ndarray, np.ndarray]] | None = None
    embedding_delta: np.ndarray | None = None
    method: str = ""


@dataclass(frozen=True)
class TuningConfig:
    """Hyper-parameters shared by every prompt-tuning method.

    The paper uses HuggingFace prompt tuning with Adam at lr=1e-4 and a
    scheduler; the default lr here is scaled up for the much smaller
    stand-in models.
    """

    n_virtual_tokens: int = 8
    steps: int = 60
    lr: float = 0.05
    weight_decay: float = 0.0
    grad_clip: float = 1.0
    warmup_fraction: float = 0.1
    anchor_weight: float = 10.0  # L2 pull toward the embedding-space init
    seed: int = 0

    def __post_init__(self):
        if self.n_virtual_tokens <= 0:
            raise ValueError("n_virtual_tokens must be positive")
        if self.steps <= 0:
            raise ValueError("steps must be positive")
        if self.anchor_weight < 0:
            raise ValueError("anchor_weight must be non-negative")


# A hook applied to the virtual-token tensor inside the forward pass.
# Noise-aware training supplies one; plain training uses identity.
PromptTransform = Callable[[Tensor], Tensor]


def build_training_ids(
    sample: Sample, tokenizer: Tokenizer,
) -> tuple[np.ndarray, np.ndarray]:
    """Token ids and loss mask for one training sample.

    Returns ``(full_ids, loss_positions)`` where ``full_ids`` is
    input + target + EOS and ``loss_positions[j]`` is True when token j
    belongs to the supervised continuation (target or EOS).
    """
    input_ids = tokenizer.encode(sample.input_text)
    target_ids = tokenizer.encode(sample.target_text)
    if input_ids.size == 0 or target_ids.size == 0:
        raise ValueError("sample has empty input or target text")
    full = np.concatenate([input_ids, target_ids, [tokenizer.eos_id]])
    loss_positions = np.zeros(full.size, dtype=bool)
    loss_positions[input_ids.size:] = True
    return full, loss_positions


def make_target_vector(full_ids: np.ndarray, loss_positions: np.ndarray,
                       prompt_len: int) -> np.ndarray:
    """Next-token targets for a sequence preceded by ``prompt_len`` virtual
    tokens.

    The model input is ``[prompt, full_ids[:-1]]`` (length
    ``prompt_len + T - 1``); position p predicts ``full_ids[p - prompt_len
    + 1]``.  Unsupervised positions get :data:`IGNORE_INDEX`.
    """
    length = prompt_len + full_ids.size - 1
    targets = np.full(length, IGNORE_INDEX, dtype=np.int64)
    for position in range(length):
        j = position - prompt_len + 1
        if 1 <= j < full_ids.size and loss_positions[j]:
            targets[position] = full_ids[j]
    return targets
