"""Applying a trained prompt artifact at inference time."""

from __future__ import annotations

import contextlib

import numpy as np

from ..llm.generation import GenerationConfig, generate
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from .base import PromptArtifact
from .prefix import kv_prefix_tensors

__all__ = ["apply_embedding_delta", "generate_with_artifact"]


@contextlib.contextmanager
def apply_embedding_delta(model: TinyCausalLM, delta: np.ndarray | None):
    """Temporarily add DEPT's low-rank delta to the embedding table."""
    if delta is None:
        yield
        return
    weight = model.token_embedding.weight
    if delta.shape != weight.shape:
        raise ValueError(
            f"embedding delta {delta.shape} does not match table {weight.shape}"
        )
    original = weight.data
    weight.data = original + delta
    try:
        yield
    finally:
        weight.data = original


def generate_with_artifact(
    model: TinyCausalLM,
    tokenizer: Tokenizer,
    artifact: PromptArtifact | None,
    input_text: str,
    config: GenerationConfig | None = None,
) -> str:
    """Generate a continuation of ``input_text`` under ``artifact``.

    ``artifact=None`` evaluates the frozen base model (zero-shot).
    """
    config = config or GenerationConfig(max_new_tokens=100, temperature=0.1,
                                        eos_id=tokenizer.eos_id)
    ids = tokenizer.encode(input_text)
    soft_prompt = None
    prefix_kv = None
    delta = None
    if artifact is not None:
        if artifact.soft_prompt is not None:
            soft_prompt = artifact.soft_prompt.matrix
        if artifact.prefix_kv is not None:
            prefix_kv = kv_prefix_tensors(artifact.prefix_kv)
        delta = artifact.embedding_delta
    with apply_embedding_delta(model, delta):
        out_ids = generate(model, ids, config, soft_prompt=soft_prompt,
                           prefix_kv=prefix_kv)
    return tokenizer.decode(out_ids)
