"""Generic prompt-tuning training loop.

All four methods share this loop: Adam + linear warmup/decay over the
trainable prompt parameters only, with the base model frozen.  A
``transform`` hook lets noise-aware training perturb the virtual tokens
inside every forward pass (Eq. 4 of the paper).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np

from ..ag import Adam, LinearWarmupDecay, Parameter, Tensor, clip_grad_norm
from ..data.lamp import Sample
from ..llm.transformer import TinyCausalLM
from .base import TuningConfig
from ..utils import rng_from_seed

__all__ = ["freeze_model", "train_prompt_parameters"]

# Freeze state is refcounted per model so concurrent tunes sharing one base
# model compose: the first freeze saves the flags, the last unfreeze
# restores them.  Without this, the first tune to finish would re-enable
# base-model gradients mid-backward for every other in-flight tune.
_FREEZE_LOCK = threading.Lock()
_FREEZE_STATES: dict[int, dict] = {}


@contextlib.contextmanager
def freeze_model(model: TinyCausalLM):
    """Temporarily mark all model parameters as non-trainable.

    This both protects the base model during prompt tuning and prunes the
    autograd graph (frozen branches record no backward closures).  Freezing
    is re-entrant and thread-safe: nested or concurrent freezes of the same
    model stack, and the original ``requires_grad`` flags come back only
    when the outermost/last context exits.
    """
    key = id(model)
    with _FREEZE_LOCK:
        state = _FREEZE_STATES.get(key)
        if state is None:
            params = model.parameters()
            state = _FREEZE_STATES[key] = {
                "count": 0,
                "params": params,
                "flags": [p.requires_grad for p in params],
            }
            for p in params:
                p.requires_grad = False
        state["count"] += 1
    try:
        yield
    finally:
        with _FREEZE_LOCK:
            state["count"] -= 1
            if state["count"] == 0:
                for p, flag in zip(state["params"], state["flags"]):
                    p.requires_grad = flag
                _FREEZE_STATES.pop(key, None)


def train_prompt_parameters(
    model: TinyCausalLM,
    parameters: Sequence[Parameter],
    loss_fn: Callable[[list[Sample]], Tensor],
    samples: list[Sample],
    config: TuningConfig,
    *,
    batch_size: int = 8,
) -> list[float]:
    """Optimise ``parameters`` to minimise ``loss_fn`` over ``samples``.

    Returns the per-step loss history.  ``loss_fn`` receives a minibatch of
    samples and must return a scalar loss tensor that depends on
    ``parameters``.
    """
    if not samples:
        raise ValueError("prompt tuning needs at least one sample")
    rng = rng_from_seed(config.seed)
    optimizer = Adam(list(parameters), lr=config.lr,
                     weight_decay=config.weight_decay)
    scheduler = LinearWarmupDecay(
        optimizer,
        warmup_steps=max(1, int(config.steps * config.warmup_fraction)),
        total_steps=config.steps,
    )
    history: list[float] = []
    with freeze_model(model):
        for _ in range(config.steps):
            if len(samples) <= batch_size:
                batch = samples
            else:
                picks = rng.choice(len(samples), size=batch_size, replace=False)
                batch = [samples[i] for i in picks]
            optimizer.zero_grad()
            loss = loss_fn(batch)
            loss.backward()
            clip_grad_norm(list(parameters), config.grad_clip)
            optimizer.step()
            scheduler.step()
            history.append(float(loss.data))
    return history
