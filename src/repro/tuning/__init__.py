"""Prompt tuning methods: vanilla PT, prefix tuning, DEPT, P-tuning v2."""

from .apply import apply_embedding_delta, generate_with_artifact
from .base import (
    IGNORE_INDEX,
    PromptArtifact,
    TrainingBatch,
    TuningConfig,
    VirtualTokens,
    build_training_batch,
    build_training_ids,
    make_target_vector,
    mean_loss,
)
from .dept import DEPTTuner
from .prefix import PrefixTuner, kv_prefix_tensors, prefix_loss_for_batch, prefix_loss_for_sample
from .ptuning_v2 import PTuningV2Tuner
from .trainer import freeze_model, train_prompt_parameters
from .vanilla import (
    VanillaPromptTuner,
    initial_prompt_matrix,
    prompt_loss_for_batch,
    prompt_loss_for_sample,
)

__all__ = [
    "VirtualTokens", "PromptArtifact", "TuningConfig", "IGNORE_INDEX",
    "build_training_ids", "make_target_vector",
    "TrainingBatch", "build_training_batch", "mean_loss",
    "VanillaPromptTuner", "PrefixTuner", "DEPTTuner", "PTuningV2Tuner",
    "initial_prompt_matrix", "prompt_loss_for_sample",
    "prompt_loss_for_batch", "prefix_loss_for_sample",
    "prefix_loss_for_batch", "kv_prefix_tensors",
    "freeze_model", "train_prompt_parameters",
    "apply_embedding_delta", "generate_with_artifact",
]
