"""Prompt tuning methods: vanilla PT, prefix tuning, DEPT, P-tuning v2."""

from .apply import apply_embedding_delta, generate_with_artifact
from .base import (
    IGNORE_INDEX,
    PromptArtifact,
    TuningConfig,
    VirtualTokens,
    build_training_ids,
    make_target_vector,
)
from .dept import DEPTTuner
from .prefix import PrefixTuner, kv_prefix_tensors
from .ptuning_v2 import PTuningV2Tuner
from .trainer import freeze_model, train_prompt_parameters
from .vanilla import VanillaPromptTuner, initial_prompt_matrix, prompt_loss_for_sample

__all__ = [
    "VirtualTokens", "PromptArtifact", "TuningConfig", "IGNORE_INDEX",
    "build_training_ids", "make_target_vector",
    "VanillaPromptTuner", "PrefixTuner", "DEPTTuner", "PTuningV2Tuner",
    "initial_prompt_matrix", "prompt_loss_for_sample", "kv_prefix_tensors",
    "freeze_model", "train_prompt_parameters",
    "apply_embedding_delta", "generate_with_artifact",
]
