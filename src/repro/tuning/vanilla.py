"""Vanilla prompt tuning (Lester et al., 2021).

A single soft-prompt matrix is prepended to the input embeddings.  This is
the "HuggingFace default prompt tuning" the paper uses to derive each OVT,
and also the Fig. 1 "Vanilla" baseline when trained one4all on a buffer.
"""

from __future__ import annotations

import numpy as np

from ..ag import Parameter, Tensor, cat, cross_entropy, sequence_cross_entropy
from ..data.lamp import Sample
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from .base import (
    IGNORE_INDEX,
    PromptArtifact,
    PromptTransform,
    TuningConfig,
    VirtualTokens,
    build_training_batch,
    build_training_ids,
    make_target_vector,
    mean_loss,
)
from .trainer import train_prompt_parameters
from ..utils import rng_from_seed

__all__ = ["VanillaPromptTuner", "prompt_loss_for_sample",
           "prompt_loss_for_batch"]


def initial_prompt_matrix(model: TinyCausalLM, tokenizer: Tokenizer,
                          samples: list[Sample], n_tokens: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Initialise virtual tokens from the samples' own token embeddings.

    This is the standard "initialise from text" option of prompt tuning; it
    also anchors each OVT near its domain's embedding cluster, which is what
    makes embedding-space retrieval meaningful.
    """
    ids = np.concatenate([tokenizer.encode(s.input_text) for s in samples])
    if ids.size >= n_tokens:
        chosen = ids[:n_tokens]
    else:
        chosen = np.concatenate(
            [ids, rng.integers(0, model.config.vocab_size, n_tokens - ids.size)]
        )
    return model.token_embedding.weight.data[chosen].copy()


def prompt_loss_for_sample(model: TinyCausalLM, prompt: Tensor,
                           sample: Sample, tokenizer: Tokenizer) -> Tensor:
    """LM loss of one sample conditioned on a soft prompt."""
    full_ids, loss_positions = build_training_ids(sample, tokenizer)
    inputs = full_ids[:-1]
    token_emb = model.embed(inputs[None, :])
    prompt_batch = prompt.reshape(1, *prompt.shape)
    embeddings = cat([prompt_batch, token_emb], axis=1)
    logits = model(embeddings=embeddings)
    targets = make_target_vector(full_ids, loss_positions, prompt.shape[0])
    vocab = logits.shape[-1]
    return cross_entropy(logits.reshape(-1, vocab), targets,
                         ignore_index=IGNORE_INDEX)


def prompt_loss_for_batch(model: TinyCausalLM, prompt: Tensor,
                          samples: list[Sample], tokenizer: Tokenizer, *,
                          batched: bool = True) -> Tensor:
    """Mean per-sample LM loss of a minibatch conditioned on a soft prompt.

    With ``batched=True`` the whole minibatch runs as one padded forward
    (padded keys masked out of attention, padded targets out of the loss);
    ``batched=False`` keeps the per-sample reference loop.  Both return the
    mean of the per-sample losses.
    """
    if not batched:
        return mean_loss([prompt_loss_for_sample(model, prompt, s, tokenizer)
                          for s in samples])
    n_tokens, d_model = prompt.shape
    batch = build_training_batch(samples, tokenizer, prompt_len=n_tokens)
    size = batch.batch_size
    token_emb = model.embed(batch.input_ids)
    prompt_rows = prompt.reshape(1, n_tokens, d_model)
    embeddings = cat([prompt_rows.broadcast_to((size, n_tokens, d_model)),
                      token_emb], axis=1)
    # Prompt columns are real conditioning for every row; only the ragged
    # token tail is padded.
    mask = np.concatenate([np.zeros((size, n_tokens), dtype=bool),
                           batch.key_padding_mask], axis=1)
    logits = model(embeddings=embeddings, key_padding_mask=mask)
    return sequence_cross_entropy(logits, batch.targets,
                                  ignore_index=IGNORE_INDEX)


class VanillaPromptTuner:
    """Trains a soft prompt over a set of samples."""

    method_name = "vanilla-pt"

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: TuningConfig = TuningConfig()):
        self.model = model
        self.tokenizer = tokenizer
        self.config = config

    def fit(self, samples: list[Sample], *,
            transform: PromptTransform | None = None) -> PromptArtifact:
        """Train virtual tokens on ``samples``; returns the artifact.

        ``transform`` is applied to the prompt tensor inside each forward
        pass (noise-aware training plugs in here).
        """
        rng = rng_from_seed(self.config.seed)
        init = initial_prompt_matrix(self.model, self.tokenizer, samples,
                                     self.config.n_virtual_tokens, rng)
        prompt = Parameter(init)
        anchor = Tensor(init.copy())

        def loss_fn(batch: list[Sample]) -> Tensor:
            effective = prompt if transform is None else transform(prompt)
            total = prompt_loss_for_batch(self.model, effective, batch,
                                          self.tokenizer,
                                          batched=self.config.batched)
            if self.config.anchor_weight > 0:
                drift = prompt - anchor
                total = total + (drift * drift).mean() * self.config.anchor_weight
            return total

        train_prompt_parameters(self.model, [prompt], loss_fn, samples,
                                self.config)
        domain = samples[0].domain if len(samples) == 1 else ""
        source = samples[0] if len(samples) == 1 else None
        tokens = VirtualTokens(prompt.data.copy(), source=source, domain=domain)
        return PromptArtifact(soft_prompt=tokens, method=self.method_name)
