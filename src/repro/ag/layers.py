"""Neural network layers built on the autograd engine."""

from __future__ import annotations

import numpy as np

from .module import Module, Parameter
from .tensor import Tensor
from ..utils import rng_from_seed

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout", "Sequential"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` with W of shape (in_features, out_features)."""

    def __init__(self, in_features: int, out_features: int, *, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or rng_from_seed(0)
        scale = 1.0 / np.sqrt(in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(rng.uniform(-scale, scale, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token-id to vector lookup with scatter-add gradients."""

    def __init__(self, num_embeddings: int, embedding_dim: int, *,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or rng_from_seed(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 0.02, (num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.min(initial=0) < 0 or indices.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return self.weight[indices]


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, *, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.weight + self.bias


class Dropout(Module):
    """Inverted dropout; identity when ``p == 0`` or in eval mode."""

    def __init__(self, p: float = 0.0, *, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or rng_from_seed(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
