"""Neural network layers built on the autograd engine."""

from __future__ import annotations

import numpy as np

from .module import Module, Parameter
from .tensor import Tensor, _unbroadcast
from ..utils import rng_from_seed

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout", "Sequential",
           "QuantizedLinear", "quantize_groups"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` with W of shape (in_features, out_features)."""

    def __init__(self, in_features: int, out_features: int, *, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or rng_from_seed(0)
        scale = 1.0 / np.sqrt(in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(rng.uniform(-scale, scale, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


def quantize_groups(weights: np.ndarray, bits: int = 4,
                    group_size: int = 32) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-group round-to-nearest quantization of a 2-D matrix.

    Groups run along the input dimension (rows), each with one float32
    scale — GPTQ's per-group format.  Returns ``(codes, scales)`` where
    ``codes`` is int8 of ``weights``'s shape holding the grid indices in
    ``[-(2**(bits-1) - 1), 2**(bits-1) - 1]`` and ``scales`` is float32
    of shape ``(n_groups,)``.  ``codes * scale`` reproduces, bit for bit,
    what the historical per-group Python loop computed; an all-zero group
    gets scale 0.0 and zero codes.
    """
    if bits < 2 or bits > 8:
        raise ValueError(f"bits must be in [2, 8], got {bits}")
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    weights = np.asarray(weights, dtype=np.float32)
    if weights.ndim != 2:
        raise ValueError("quantize_groups expects a 2-D matrix")
    q_max = 2 ** (bits - 1) - 1
    rows, cols = weights.shape
    n_groups = -(-rows // group_size)
    pad = n_groups * group_size - rows
    padded = weights
    if pad:
        # The tail group is shorter than group_size: pad it with zeros,
        # which cannot raise an abs-max and quantize to code 0 themselves,
        # so the tail rows round exactly as the unpadded loop rounded them.
        padded = np.concatenate(
            [weights, np.zeros((pad, cols), dtype=np.float32)], axis=0)
    grouped = padded.reshape(n_groups, group_size, cols)
    scales = np.abs(grouped).max(axis=(1, 2)) / q_max
    # An all-zero group has scale 0; divide by 1 there (the zeros still
    # round to code 0) instead of poisoning the whole batch with inf/nan.
    safe = np.where(scales == 0.0, np.float32(1.0), scales)
    codes = np.clip(np.round(grouped / safe[:, None, None]),
                    -q_max - 1, q_max)
    codes = codes.reshape(n_groups * group_size, cols)[:rows]
    return codes.astype(np.int8), scales.astype(np.float32)


def _pack_int4(codes_t: np.ndarray) -> np.ndarray:
    """Pack int4 codes, two per byte, along the last (input) axis.

    ``codes_t`` is int8 shaped (out_features, in_features) with values in
    [-7, 7].  Each value is stored offset-binary (``code + 8``); byte ``j``
    holds input channels ``2j`` (low nibble) and ``2j + 1`` (high nibble).
    An odd input dimension is padded with code 0 (stored nibble 8).
    """
    out_features, in_features = codes_t.shape
    if in_features % 2:
        codes_t = np.concatenate(
            [codes_t, np.zeros((out_features, 1), dtype=np.int8)], axis=1)
    biased = (codes_t + np.int8(8)).astype(np.uint8)
    return biased[:, 0::2] | (biased[:, 1::2] << np.uint8(4))


class QuantizedLinear(Module):
    """Weight-quantized drop-in for :class:`Linear` (int8 or packed int4).

    Stores the frozen weight as quantized codes plus per-input-group
    float32 scales (see :func:`quantize_groups`) and evaluates the affine
    map with a fused dequantize-matmul kernel that never materializes the
    full float32 weight matrix: per-group scales are folded into the
    activations once (symmetric quantization makes in-group dequantization
    a pure int-to-float cast), then column blocks of the stored transposed
    codes are cast into a small scratch buffer and multiplied while
    cache-hot.

    Two properties the serving stack depends on:

    - **Batch-layout determinism.**  The kernel calls ``np.matmul`` on the
      activations at their original dimensionality, so a ``(B, 1, d)``
      decode batch is evaluated slice-by-slice exactly like the float
      path — every row's result is bitwise independent of which other
      sequences share the batch (a whole-batch 2-D GEMM would not be:
      BLAS picks different kernels for different batch heights).
    - **Equivalence contract.**  :meth:`reference_forward` materializes
      the dequantized weights (test/debug only) and runs the plain float
      GEMM; the fused kernel agrees with it to float32 rounding, because
      column blocking partitions outputs, never the reduction axis.

    The weight is frozen by construction — it is not a
    :class:`Parameter`, so optimizers never see it — but gradients still
    flow to the *input* (and bias), which is what soft-prompt tuning
    against a frozen quantized base model needs.
    """

    #: scratch budget per column block, in float32 elements (~256 KiB):
    #: big enough to amortize dispatch, small enough to stay L2-resident.
    _BLOCK_ELEMS = 65536

    def __init__(self, in_features: int, out_features: int, *,
                 bits: int, group_size: int,
                 qweight: np.ndarray, scales: np.ndarray,
                 bias: Parameter | None = None):
        super().__init__()
        if bits not in (4, 8):
            raise ValueError(f"QuantizedLinear supports bits 4 or 8, "
                             f"got {bits}")
        self.in_features = in_features
        self.out_features = out_features
        self.bits = bits
        self.group_size = group_size
        # Transposed storage, (out_features, in_features[/2]): a column
        # block of W is then a contiguous row block of the stored array.
        self.qweight = qweight
        self.scales = scales
        self.bias = bias
        self._row_scales = np.repeat(
            scales, group_size)[:in_features].astype(np.float32)
        self._col_block = max(
            8, min(out_features,
                   self._BLOCK_ELEMS // max(in_features, 1)))
        self._scratch_cols = in_features + (in_features % 2
                                            if bits == 4 else 0)

    # ------------------------------------------------------------------
    @classmethod
    def from_linear(cls, linear: Linear, *, bits: int = 8,
                    group_size: int = 32) -> "QuantizedLinear":
        """Quantize a dense :class:`Linear`'s weight into a new layer.

        The bias (trained, tiny) is carried over as the same
        :class:`Parameter` object; the float weight is dropped.
        """
        codes, scales = quantize_groups(linear.weight.data, bits, group_size)
        codes_t = np.ascontiguousarray(codes.T)
        qweight = _pack_int4(codes_t) if bits == 4 else codes_t
        return cls(linear.in_features, linear.out_features, bits=bits,
                   group_size=group_size, qweight=qweight, scales=scales,
                   bias=linear.bias)

    # ------------------------------------------------------------------
    # The fused kernel
    # ------------------------------------------------------------------
    def _cast_block(self, scratch: np.ndarray, c0: int, c1: int) -> np.ndarray:
        """Dequantize output channels [c0, c1) into ``scratch`` (sans scale).

        Pure dtype widening for int8; nibble unpack for int4.  Returns the
        (c1 - c0, in_features) view ready for the matmul.
        """
        block = scratch[:c1 - c0]
        packed = self.qweight[c0:c1]
        if self.bits == 8:
            np.copyto(block, packed)
        else:
            block[:, 0::2] = packed & np.uint8(0x0F)
            block[:, 1::2] = packed >> np.uint8(4)
            block -= np.float32(8.0)
        return block[:, :self.in_features]

    def _affine(self, x: np.ndarray) -> np.ndarray:
        """``x @ W + b`` on raw float32 arrays, without materializing W.

        Scratch buffers are allocated per call (not cached on the layer)
        so concurrent forwards over the shared model never race.
        """
        xs = x * self._row_scales
        out = np.empty(x.shape[:-1] + (self.out_features,), dtype=np.float32)
        scratch = np.empty((self._col_block, self._scratch_cols),
                           dtype=np.float32)
        for c0 in range(0, self.out_features, self._col_block):
            c1 = min(c0 + self._col_block, self.out_features)
            block = self._cast_block(scratch, c0, c1)
            np.matmul(xs, block.T, out=out[..., c0:c1])
        if self.bias is not None:
            out += self.bias.data
        return out

    def _affine_grad(self, grad: np.ndarray) -> np.ndarray:
        """``(grad @ W.T) * row_scales`` — input gradient, same blocking."""
        acc: np.ndarray | None = None
        scratch = np.empty((self._col_block, self._scratch_cols),
                           dtype=np.float32)
        for c0 in range(0, self.out_features, self._col_block):
            c1 = min(c0 + self._col_block, self.out_features)
            block = self._cast_block(scratch, c0, c1)
            part = np.matmul(grad[..., c0:c1], block)
            acc = part if acc is None else acc + part
        assert acc is not None
        return acc * self._row_scales

    # ------------------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        out = self._affine(x.data)
        bias = self.bias

        def backward(grad: np.ndarray) -> None:
            if x.requires_grad:
                x._accumulate(self._affine_grad(grad))
            if bias is not None and bias.requires_grad:
                bias._accumulate(_unbroadcast(grad, bias.shape))

        parents = (x,) if bias is None else (x, bias)
        return Tensor._make(out, parents, backward)

    def affine_numpy(self, x: np.ndarray) -> np.ndarray:
        """The fused kernel on a raw ndarray (no autograd) — for numpy
        fast paths like the speculative draft loop."""
        return self._affine(np.asarray(x, dtype=np.float32))

    # ------------------------------------------------------------------
    # Reference mode (the equivalence contract; materializes W)
    # ------------------------------------------------------------------
    def dequantized_weight(self) -> np.ndarray:
        """The full float32 (in_features, out_features) weight matrix.

        Bit-identical to ``quantize_array`` applied to the original dense
        weight.  Test/debug only: this materializes exactly what the
        fused kernel exists to avoid.
        """
        if self.bits == 8:
            codes = self.qweight.T.astype(np.float32)
        else:
            unpacked = np.empty((self.out_features, self._scratch_cols),
                                dtype=np.float32)
            unpacked[:, 0::2] = self.qweight & np.uint8(0x0F)
            unpacked[:, 1::2] = self.qweight >> np.uint8(4)
            unpacked -= np.float32(8.0)
            codes = unpacked[:, :self.in_features].T
        return np.ascontiguousarray(codes * self._row_scales[:, None])

    def reference_forward(self, x: np.ndarray) -> np.ndarray:
        """Float32 reference: explicitly-dequantized weights, plain GEMM."""
        out = np.asarray(x, dtype=np.float32) @ self.dequantized_weight()
        if self.bias is not None:
            out = out + self.bias.data
        return out

    # ------------------------------------------------------------------
    @property
    def weight_nbytes(self) -> int:
        """Resident bytes of the quantized weight (codes + scales)."""
        return int(self.qweight.nbytes + self.scales.nbytes)

    @property
    def dense_nbytes(self) -> int:
        """Bytes the dense float32 weight would occupy."""
        return int(self.in_features * self.out_features * 4)


class Embedding(Module):
    """Token-id to vector lookup with scatter-add gradients."""

    def __init__(self, num_embeddings: int, embedding_dim: int, *,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or rng_from_seed(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0.0, 0.02, (num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.min(initial=0) < 0 or indices.max(initial=0) >= self.num_embeddings:
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings})"
            )
        return self.weight[indices]


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, *, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered * (var + self.eps) ** -0.5
        return normed * self.weight + self.bias


class Dropout(Module):
    """Inverted dropout; identity when ``p == 0`` or in eval mode."""

    def __init__(self, p: float = 0.0, *, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or rng_from_seed(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Apply modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
