"""Minimal reverse-mode autograd engine over numpy.

This subpackage replaces PyTorch for the purposes of this reproduction:
tensors with recorded backward closures, module containers, common layers,
activations/losses, and optimizers.
"""

from .functional import (cross_entropy, gelu, log_softmax, mse_loss,
                         sequence_cross_entropy, softmax)
from .layers import (Dropout, Embedding, LayerNorm, Linear, QuantizedLinear,
                     Sequential, quantize_groups)
from .module import Module, Parameter, iter_modules
from .optim import Adam, LinearWarmupDecay, SGD, clip_grad_norm
from .tensor import Tensor, cat, is_grad_enabled, no_grad, stack

__all__ = [
    "Tensor", "cat", "stack", "no_grad", "is_grad_enabled",
    "Module", "Parameter", "iter_modules",
    "Linear", "Embedding", "LayerNorm", "Dropout", "Sequential",
    "QuantizedLinear", "quantize_groups",
    "softmax", "log_softmax", "gelu", "cross_entropy",
    "sequence_cross_entropy", "mse_loss",
    "SGD", "Adam", "LinearWarmupDecay", "clip_grad_norm",
]
