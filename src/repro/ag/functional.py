"""Differentiable functional operations built on :class:`~repro.ag.Tensor`.

These cover the activations and losses the transformer substrate needs.
``softmax``/``log_softmax`` are composed from primitive ops; ``cross_entropy``
is a fused primitive (softmax-minus-onehot backward) because it sits on the
hot path of every prompt-tuning step.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["softmax", "log_softmax", "gelu", "cross_entropy",
           "sequence_cross_entropy", "mse_loss"]

_SQRT_2_OVER_PI = np.float32(np.sqrt(2.0 / np.pi))
_GELU_COEFF = np.float32(0.044715)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    Fused primitive (like :func:`cross_entropy`): attention calls this on
    every layer of every forward, and the composed max/sub/exp/sum/div
    version costs five graph nodes and five full-size temporaries per call.
    """
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    np.exp(shifted, out=shifted)
    shifted /= shifted.sum(axis=axis, keepdims=True)
    value = shifted

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        inner = (grad * value).sum(axis=axis, keepdims=True)
        x._accumulate(value * (grad - inner))

    return Tensor._make(value, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in GPT-2).

    Fused primitive: the composed version records eight graph nodes per
    MLP, which dominates the training-step floor at these model sizes.
    """
    data = x.data
    inner = _SQRT_2_OVER_PI * (data + _GELU_COEFF * (data * data * data))
    tanh_inner = np.tanh(inner)
    value = 0.5 * data * (1.0 + tanh_inner)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        sech2 = 1.0 - tanh_inner * tanh_inner
        d_inner = _SQRT_2_OVER_PI * (1.0 + 3.0 * _GELU_COEFF * (data * data))
        x._accumulate(grad * (0.5 * (1.0 + tanh_inner)
                              + 0.5 * data * sech2 * d_inner))

    return Tensor._make(value, (x,), backward)


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
) -> Tensor:
    """Mean token-level cross entropy.

    Args:
        logits: ``(N, V)`` unnormalised scores.
        targets: ``(N,)`` integer class ids.
        ignore_index: targets equal to this id contribute no loss/gradient
            (used to mask prompt positions and padding).

    Returns:
        A scalar tensor.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.ndim != 1 or logits.shape[0] != targets.shape[0]:
        raise ValueError(
            f"cross_entropy expects (N, V) logits and (N,) targets, got "
            f"{logits.shape} and {targets.shape}"
        )
    if ignore_index is not None:
        valid = targets != ignore_index
    else:
        valid = np.ones_like(targets, dtype=bool)
    count = int(valid.sum())
    if count == 0:
        raise ValueError("cross_entropy received no valid targets")

    scores = logits.data
    shifted = scores - scores.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1)) + scores.max(axis=1)
    safe_targets = np.where(valid, targets, 0)
    picked = scores[np.arange(scores.shape[0]), safe_targets]
    losses = np.where(valid, logsumexp - picked, 0.0)
    value = np.float32(losses.sum() / count)

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        probs[np.arange(scores.shape[0]), safe_targets] -= 1.0
        probs[~valid] = 0.0
        logits._accumulate(probs * (float(grad) / count))

    return Tensor._make(np.asarray(value), (logits,), backward)


def sequence_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
) -> Tensor:
    """Mean over sequences of each sequence's mean token cross entropy.

    This is the batched-training loss: every sequence counts equally
    regardless of how many supervised tokens it has, so the result equals
    the mean of per-sample :func:`cross_entropy` losses over the same batch
    (padded positions carry ``ignore_index``).

    Args:
        logits: ``(B, T, V)`` unnormalised scores.
        targets: ``(B, T)`` integer class ids.
        ignore_index: targets equal to this id contribute no loss/gradient.

    Returns:
        A scalar tensor.
    """
    targets = np.asarray(targets)
    if logits.ndim != 3 or targets.ndim != 2 or logits.shape[:2] != targets.shape:
        raise ValueError(
            f"sequence_cross_entropy expects (B, T, V) logits and (B, T) "
            f"targets, got {logits.shape} and {targets.shape}"
        )
    if ignore_index is not None:
        valid = targets != ignore_index
    else:
        valid = np.ones_like(targets, dtype=bool)
    counts = valid.sum(axis=1)
    if np.any(counts == 0):
        raise ValueError(
            "sequence_cross_entropy received a sequence with no valid targets"
        )

    scores = logits.data
    peak = scores.max(axis=-1, keepdims=True)
    shifted = scores - peak
    logsumexp = np.log(np.exp(shifted).sum(axis=-1)) + peak[..., 0]
    safe_targets = np.where(valid, targets, 0)
    picked = np.take_along_axis(scores, safe_targets[..., None], axis=-1)[..., 0]
    losses = np.where(valid, logsumexp - picked, 0.0)
    per_sequence = losses.sum(axis=1) / counts
    value = np.float32(per_sequence.mean())

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        batch, length, vocab = scores.shape
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        flat = probs.reshape(-1, vocab)
        flat[np.arange(batch * length), safe_targets.reshape(-1)] -= 1.0
        probs[~valid] = 0.0
        scale = (float(grad) / batch) / counts
        logits._accumulate(probs * scale[:, None, None].astype(np.float32))

    return Tensor._make(np.asarray(value), (logits,), backward)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between two tensors of identical shape."""
    if prediction.shape != target.shape:
        raise ValueError(
            f"mse_loss shape mismatch: {prediction.shape} vs {target.shape}"
        )
    diff = prediction - target
    return (diff * diff).mean()
