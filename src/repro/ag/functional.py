"""Differentiable functional operations built on :class:`~repro.ag.Tensor`.

These cover the activations and losses the transformer substrate needs.
``softmax``/``log_softmax`` are composed from primitive ops; ``cross_entropy``
is a fused primitive (softmax-minus-onehot backward) because it sits on the
hot path of every prompt-tuning step.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["softmax", "log_softmax", "gelu", "cross_entropy", "mse_loss"]

_SQRT_2_OVER_PI = np.float32(np.sqrt(2.0 / np.pi))
_GELU_COEFF = np.float32(0.044715)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in GPT-2)."""
    inner = (x + x ** 3.0 * _GELU_COEFF) * _SQRT_2_OVER_PI
    return x * (inner.tanh() + 1.0) * 0.5


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: int | None = None,
) -> Tensor:
    """Mean token-level cross entropy.

    Args:
        logits: ``(N, V)`` unnormalised scores.
        targets: ``(N,)`` integer class ids.
        ignore_index: targets equal to this id contribute no loss/gradient
            (used to mask prompt positions and padding).

    Returns:
        A scalar tensor.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2 or targets.ndim != 1 or logits.shape[0] != targets.shape[0]:
        raise ValueError(
            f"cross_entropy expects (N, V) logits and (N,) targets, got "
            f"{logits.shape} and {targets.shape}"
        )
    if ignore_index is not None:
        valid = targets != ignore_index
    else:
        valid = np.ones_like(targets, dtype=bool)
    count = int(valid.sum())
    if count == 0:
        raise ValueError("cross_entropy received no valid targets")

    scores = logits.data
    shifted = scores - scores.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1)) + scores.max(axis=1)
    safe_targets = np.where(valid, targets, 0)
    picked = scores[np.arange(scores.shape[0]), safe_targets]
    losses = np.where(valid, logsumexp - picked, 0.0)
    value = np.float32(losses.sum() / count)

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        probs[np.arange(scores.shape[0]), safe_targets] -= 1.0
        probs[~valid] = 0.0
        logits._accumulate(probs * (float(grad) / count))

    return Tensor._make(np.asarray(value), (logits,), backward)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between two tensors of identical shape."""
    if prediction.shape != target.shape:
        raise ValueError(
            f"mse_loss shape mismatch: {prediction.shape} vs {target.shape}"
        )
    diff = prediction - target
    return (diff * diff).mean()
