"""Module/Parameter containers mirroring the familiar torch.nn layout."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "iter_modules"]


class Parameter(Tensor):
    """A tensor that is registered as trainable state of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters stay trainable even when constructed under no_grad().
        self.requires_grad = True


class Module:
    """Base class for components with trainable parameters.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; ``parameters()`` and ``state_dict()`` discover them by
    attribute walking, the same contract as ``torch.nn.Module``.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def train(self) -> "Module":
        self._set_training(True)
        return self

    def eval(self) -> "Module":
        self._set_training(False)
        return self

    def _set_training(self, mode: bool) -> None:
        for module in iter_modules(self):
            module.training = mode

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in params.items():
            value = np.asarray(state[name], dtype=np.float32)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.shape}"
                )
            param.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError


def iter_modules(module: Module) -> Iterator[Module]:
    """Every :class:`Module` reachable from ``module``, each exactly once.

    Walks attribute values the way parameter discovery does, but also
    descends into ``dict`` values (a registry of heads, for example) and
    deduplicates by object identity, so a submodule shared between two
    attributes — tied weights — is yielded a single time.  Containers are
    walked recursively, so nested lists/dicts of modules are found too.
    """
    seen: set[int] = set()

    def walk(value) -> Iterator[Module]:
        if isinstance(value, Module):
            if id(value) in seen:
                return
            seen.add(id(value))
            yield value
            for child in vars(value).values():
                yield from walk(child)
        elif isinstance(value, (list, tuple)):
            for item in value:
                yield from walk(item)
        elif isinstance(value, dict):
            for item in value.values():
                yield from walk(item)

    yield from walk(module)
