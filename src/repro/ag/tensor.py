"""Reverse-mode automatic differentiation over numpy arrays.

This module provides the minimal tensor engine the rest of the repository is
built on.  It follows the familiar define-by-run model: every operation on a
:class:`Tensor` records a backward closure, and :meth:`Tensor.backward`
replays those closures in reverse topological order.

Only float32 tensors are supported; integer index arrays (e.g. token ids)
are passed around as plain numpy arrays.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "cat", "stack", "no_grad", "is_grad_enabled"]

# Grad mode is per-thread: the serving engine decodes under no_grad() on
# worker threads while training may run with gradients elsewhere.
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradients (this thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


def _as_array(data) -> np.ndarray:
    array = np.asarray(data)
    if array.dtype != np.float32:
        array = array.astype(np.float32)
    return array


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over the axes numpy broadcasting introduced.

    ``grad`` has the broadcasted shape; the result has exactly ``shape``.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _pow_array(data: np.ndarray, exponent: float) -> np.ndarray:
    """``data ** exponent`` with fast paths for the exponents on hot paths.

    numpy's float-exponent ``power`` is a transcendental call per element;
    the small exponents used by gelu (3), layernorm (-1/2) and division
    (-1) reduce to multiplies and a sqrt, which is several times faster and
    at least as accurate.
    """
    if exponent == 1.0:
        return data.copy()   # never alias the operand's buffer
    if exponent == 2.0:
        return data * data
    if exponent == 3.0:
        return data * data * data
    if exponent == 0.5:
        return np.sqrt(data)
    if exponent == -0.5:
        return 1.0 / np.sqrt(data)
    if exponent == -1.0:
        return 1.0 / data
    if exponent == -1.5:
        sqrt = np.sqrt(data)
        return 1.0 / (data * sqrt)
    if exponent == -2.0:
        return 1.0 / (data * data)
    return data ** exponent


class Tensor:
    """A numpy-backed tensor that supports reverse-mode differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy())

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_note})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build a result tensor, recording the graph only when needed."""
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(np.float32, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar")
            grad = np.ones_like(self.data)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(np.asarray(grad, dtype=np.float32))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(self.data + other.data, (self, other), backward)

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(self.data * other.data, (self, other), backward)

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (other * -1.0)

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self * other ** -1.0

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("only scalar exponents are supported")
        value = _pow_array(self.data, exponent)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent
                                 * _pow_array(self.data, exponent - 1.0))

        return Tensor._make(value, (self,), backward)

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __radd__(self, other) -> "Tensor":
        return self + other

    def __rsub__(self, other) -> "Tensor":
        return (self * -1.0) + other

    def __rmul__(self, other) -> "Tensor":
        return self * other

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    # ------------------------------------------------------------------
    # Matrix multiplication
    # ------------------------------------------------------------------
    def __matmul__(self, other: "Tensor") -> "Tensor":
        if not isinstance(other, Tensor):
            other = Tensor(other)
        if self.ndim < 2 or other.ndim < 2:
            raise ValueError("matmul requires tensors with ndim >= 2")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_a = np.matmul(grad, other.data.swapaxes(-1, -2))
                self._accumulate(_unbroadcast(grad_a, self.shape))
            if other.requires_grad:
                grad_b = np.matmul(self.data.swapaxes(-1, -2), grad)
                other._accumulate(_unbroadcast(grad_b, other.shape))

        return Tensor._make(np.matmul(self.data, other.data), (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        value = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).astype(np.float32))

        return Tensor._make(np.asarray(value), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad if keepdims else np.expand_dims(grad, axis=axis)
            mask = (self.data == value).astype(np.float32)
            mask /= mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * g)

        out_value = value if keepdims else value.squeeze(axis=axis)
        return Tensor._make(out_value, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value)

        return Tensor._make(value, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - value * value))

        return Tensor._make(value, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(np.float32)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * value * (1.0 - value))

        return Tensor._make(value, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.swapaxes(a, b))

        return Tensor._make(self.data.swapaxes(a, b), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        value = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(value, (self,), backward)

    def broadcast_to(self, shape) -> "Tensor":
        """Broadcast to ``shape``; gradients sum over the expanded axes.

        This is how a single trained prompt (or KV prefix) is tiled across a
        minibatch without copying parameters per sample.
        """
        shape = tuple(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, original))

        return Tensor._make(np.broadcast_to(self.data, shape), (self,), backward)

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace entries where ``mask`` is true with ``value`` (constant)."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, np.float32(value), self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, grad))

        return Tensor._make(out_data, (self,), backward)


def cat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cat() requires at least one tensor")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("stack() requires at least one tensor")
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(grad, i, axis=axis))

    return Tensor._make(data, tensors, backward)
