"""Optimizers and learning-rate schedules for prompt tuning.

The paper tunes virtual tokens with Adam at lr=1e-4 plus a scheduler; both
are provided here, together with plain SGD (used in unit tests) and global
gradient-norm clipping.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["SGD", "Adam", "LinearWarmupDecay", "clip_grad_norm"]


def clip_grad_norm(parameters: list[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm.
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm > 0.0:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class _Optimizer:
    def __init__(self, parameters: list[Tensor], lr: float):
        self.parameters = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data -= self.lr * update


class Adam(_Optimizer):
    """Adam (Kingma & Ba) with optional decoupled weight decay."""

    def __init__(self, parameters, lr: float = 1e-4, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                param.data -= self.lr * self.weight_decay * param.data
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LinearWarmupDecay:
    """Linear warmup to the base lr, then linear decay to ``final_factor``.

    Matches the HuggingFace ``get_linear_schedule_with_warmup`` shape used by
    the paper's prompt-tuning recipe.  The schedule is applied to the
    optimizer at construction, so the *first* optimizer step already runs at
    ``base_lr / warmup_steps`` — the usual step-then-schedule training loop
    does not skip warmup.  Optimizer step ``k`` (1-indexed) runs at factor
    ``k / warmup_steps`` through the warmup, peaks at 1.0 on step
    ``warmup_steps``, and decays linearly to ``final_factor`` on step
    ``total_steps``.
    """

    def __init__(self, optimizer: _Optimizer, warmup_steps: int, total_steps: int,
                 final_factor: float = 0.0):
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("warmup_steps must be in [0, total_steps]")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.final_factor = final_factor
        self._step_count = 1
        self.optimizer.lr = self.base_lr * self.current_factor()

    def current_factor(self) -> float:
        step = self._step_count
        if self.warmup_steps and step <= self.warmup_steps:
            return step / self.warmup_steps
        # Without warmup the peak is the first step, not a phantom step 0.
        peak_step = max(self.warmup_steps, 1)
        remaining = self.total_steps - peak_step
        if remaining <= 0:
            return 1.0
        progress = min(1.0, max(0.0, (step - peak_step) / remaining))
        return 1.0 + progress * (self.final_factor - 1.0)

    def step(self) -> None:
        self._step_count += 1
        self.optimizer.lr = self.base_lr * self.current_factor()
