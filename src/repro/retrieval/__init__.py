"""OVT retrieval: multi-scale pooling, SSA and MIPS on CiM."""

from .engine import (
    MIPS_CONFIG,
    RETRIEVAL_REGISTRY,
    SSA_CONFIG,
    CiMSearchEngine,
    SearchConfig,
    available_retrievals,
    get_retrieval,
    register_retrieval,
    wmsdp_reference,
)
from .pooling import avg_pool_rows, multi_scale_vectors, pad_rows

__all__ = [
    "pad_rows", "avg_pool_rows", "multi_scale_vectors",
    "SearchConfig", "SSA_CONFIG", "MIPS_CONFIG",
    "CiMSearchEngine", "wmsdp_reference",
    "RETRIEVAL_REGISTRY", "register_retrieval", "available_retrievals",
    "get_retrieval",
]
