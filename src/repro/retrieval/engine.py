"""OVT retrieval engines: the paper's SSA, and MIPS as the baseline.

Both engines store encoded OVT matrices on NVM crossbars (one column per
OVT and per scale) and answer queries with in-memory matrix multiplies.
The Weighted Multi-Scale Dot Product (Eq. 5) is

    WMSDP(e, p) = sum_i w_i * (Pool_i(e) . Pool_i(p)) / sum_i w_i

with scales {1, 2, 4} and weights {1.0, 0.8, 0.6}; MIPS is the degenerate
single-scale, weight-1 case (a plain max-inner-product search).

Queries batch end to end: :meth:`CiMSearchEngine.query_batch` scores every
pending query against every scale with one :meth:`CiMMatrix.matmat` per
scale, and :meth:`CiMSearchEngine.query` is the batch-of-one case of the
same path, so batched and sequential scores agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cim.accelerator import CiMMatrix, MitigationHooks
from ..nvm.crossbar import CrossbarStats, _restore_rng_state, _rng_state
from ..nvm.device_models import NVMDevice
from ..utils import Registry, rng_from_seed, spawn_generators
from .pooling import multi_scale_vectors

__all__ = ["SearchConfig", "SSA_CONFIG", "MIPS_CONFIG", "CiMSearchEngine",
           "wmsdp_reference", "RETRIEVAL_REGISTRY", "register_retrieval",
           "available_retrievals", "get_retrieval"]


@dataclass(frozen=True)
class SearchConfig:
    """Scales/weights of the search plus the NVM array geometry."""

    scales: tuple[int, ...] = (1, 2, 4)
    weights: tuple[float, ...] = (1.0, 0.8, 0.6)
    pad_length: int = 16
    adc_bits: int = 8
    normalize_scales: bool = True

    def __post_init__(self):
        if len(self.scales) != len(self.weights):
            raise ValueError("scales and weights must pair up")
        if not self.scales:
            raise ValueError("need at least one scale")
        for scale in self.scales:
            if self.pad_length % scale != 0:
                raise ValueError(
                    f"pad_length {self.pad_length} not divisible by {scale}"
                )
        if any(w <= 0 for w in self.weights):
            raise ValueError("weights must be positive")


SSA_CONFIG = SearchConfig(scales=(1, 2, 4), weights=(1.0, 0.8, 0.6))
MIPS_CONFIG = SearchConfig(scales=(1,), weights=(1.0,))


def _validate_retrieval(name: str, config: SearchConfig) -> None:
    if not isinstance(config, SearchConfig):
        raise TypeError(f"retrieval {name!r} must map to a SearchConfig")


# Retrieval strategy zoo: a name selects the SearchConfig the framework's
# CiMSearchEngine runs with.  ``FrameworkConfig(retrieval=...)`` accepts any
# registered name, so new scale/weight schemes plug in without code changes:
#
#     register_retrieval("ssa-fine", SearchConfig(scales=(1, 2, 4, 8),
#                                                 weights=(1.0, .8, .6, .4),
#                                                 pad_length=16))
RETRIEVAL_REGISTRY: Registry[SearchConfig] = Registry(
    "retrieval strategy", validate=_validate_retrieval)
RETRIEVAL_REGISTRY.register("ssa", SSA_CONFIG)
RETRIEVAL_REGISTRY.register("mips", MIPS_CONFIG)


def register_retrieval(name: str, config: SearchConfig | None = None, *,
                       overwrite: bool = False):
    """Register a retrieval strategy (name -> :class:`SearchConfig`)."""
    return RETRIEVAL_REGISTRY.register(name, config, overwrite=overwrite)


def available_retrievals() -> list[str]:
    """Names accepted by ``FrameworkConfig(retrieval=...)``."""
    return RETRIEVAL_REGISTRY.names()


def get_retrieval(name: str) -> SearchConfig:
    """Look up a registered retrieval strategy's search configuration."""
    return RETRIEVAL_REGISTRY[name]


def _unit(vector: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(vector))
    return vector if norm == 0.0 else vector / norm


def wmsdp_reference(query: np.ndarray, candidate: np.ndarray,
                    config: SearchConfig = SSA_CONFIG) -> float:
    """Noise-free WMSDP between two token matrices (digital reference)."""
    q_vectors = multi_scale_vectors(query, config.scales, config.pad_length)
    c_vectors = multi_scale_vectors(candidate, config.scales, config.pad_length)
    total = 0.0
    for scale, weight in zip(config.scales, config.weights):
        q, c = q_vectors[scale], c_vectors[scale]
        if config.normalize_scales:
            q, c = _unit(q), _unit(c)
        total += weight * float(q @ c)
    return total / sum(config.weights)


class CiMSearchEngine:
    """Stores encoded OVTs on NVM and retrieves by WMSDP / MIPS."""

    # The device model is configuration: restore targets an engine
    # already built with the same device (snapshot stores its name).
    _SNAPSHOT_EXCLUDED = ("device",)

    def __init__(
        self,
        device: NVMDevice,
        *,
        sigma: float = 0.1,
        config: SearchConfig = SSA_CONFIG,
        mitigation: MitigationHooks | None = None,
        on_cim: bool = True,
        vectorized: bool = True,
        rng: np.random.Generator | None = None,
    ):
        self.device = device
        self.sigma = sigma
        self.config = config
        self.mitigation = mitigation
        self.on_cim = on_cim
        self.vectorized = vectorized
        self._rng = rng or rng_from_seed(0)
        self._scale_matrices: dict[int, CiMMatrix] = {}
        self._digital_vectors: dict[int, np.ndarray] = {}
        self._norms: dict[int, np.ndarray] = {}
        self._row_counts: list[int] = []
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def n_stored(self) -> int:
        return self._count

    def build(self, encoded_ovts: list[np.ndarray]) -> None:
        """Program the scaled copies of every OVT into crossbars.

        ``encoded_ovts`` are (tokens, code_dim) matrices in the autoencoder
        space.  Re-building reprograms all arrays (new noise draw), exactly
        like rewriting the NVM.
        """
        if not encoded_ovts:
            raise ValueError("need at least one OVT to build the store")
        self._row_counts = [m.shape[0] for m in encoded_ovts]
        self._count = len(encoded_ovts)
        self._scale_matrices.clear()
        self._digital_vectors.clear()
        self._norms = {}
        # One spawned stream per scale store: a store's programming noise
        # depends only on its position in the build, not on how many
        # tiles (hence draws) the stores built before it needed.
        store_rngs = iter(spawn_generators(self._rng,
                                           len(self.config.scales)))
        for scale in self.config.scales:
            columns = []
            norms = []
            for m in encoded_ovts:
                vector = multi_scale_vectors(m, (scale,),
                                             self.config.pad_length)[scale]
                norm = float(np.linalg.norm(vector))
                if self.config.normalize_scales and norm > 0:
                    vector = vector / norm
                columns.append(vector)
                norms.append(norm if norm > 0 else 1.0)
            self._norms[scale] = np.asarray(norms, dtype=np.float32)
            stacked = np.stack(columns, axis=1)  # (rows, n_ovts)
            if self.on_cim:
                self._scale_matrices[scale] = CiMMatrix(
                    stacked, self.device, sigma=self.sigma,
                    adc_bits=self.config.adc_bits,
                    mitigation=self.mitigation, rng=next(store_rngs),
                    vectorized=self.vectorized,
                )
            else:
                self._digital_vectors[scale] = stacked

    def query(self, encoded_query: np.ndarray) -> np.ndarray:
        """WMSDP similarity of the query against every stored OVT.

        The batch-of-one case of :meth:`query_batch`, so a query scores
        identically whether it arrives alone or in a batch.
        """
        return self.query_batch([encoded_query])[0]

    def query_batch(self, encoded_queries: Sequence[np.ndarray]) -> np.ndarray:
        """Scores of many queries at once, shape (batch, n_stored).

        All queries are pooled, stacked per scale and scored against each
        scale's store with a single :meth:`CiMMatrix.matmat` — one batched
        in-memory GMM per scale instead of ``batch x scales`` matvecs.
        Row ``i`` equals ``query(encoded_queries[i])``.
        """
        self._require_built()
        if len(encoded_queries) == 0:
            raise ValueError("query_batch needs at least one query")
        pooled = [multi_scale_vectors(q, self.config.scales,
                                      self.config.pad_length)
                  for q in encoded_queries]
        total = np.zeros((len(pooled), self._count), dtype=np.float64)
        for scale, weight in zip(self.config.scales, self.config.weights):
            rows = [vectors[scale] for vectors in pooled]
            if self.config.normalize_scales:
                rows = [_unit(row) for row in rows]
            stacked = np.stack(rows)
            if self.on_cim:
                similarity = self._scale_matrices[scale].matmat(stacked)
            else:
                # Per-row gemv keeps the digital baseline bit-identical to
                # sequential queries regardless of the batch width.
                store = self._digital_vectors[scale]
                similarity = np.stack([row @ store for row in stacked])
            total += weight * similarity.astype(np.float64)
        return (total / sum(self.config.weights)).astype(np.float32)

    def retrieve(self, encoded_query: np.ndarray) -> int:
        """Index of the best-matching stored OVT."""
        return int(np.argmax(self.query(encoded_query)))

    def retrieve_batch(self,
                       encoded_queries: Sequence[np.ndarray]) -> list[int]:
        """Best-match index per query; ties resolve like :meth:`retrieve`.

        ``np.argmax`` picks the first maximum along each row, so a batch
        returns exactly the indices the equivalent sequential
        :meth:`retrieve` calls would.
        """
        scores = self.query_batch(encoded_queries)
        return [int(i) for i in np.argmax(scores, axis=1)]

    def restore(self, index: int) -> np.ndarray:
        """Read OVT ``index`` back from NVM (noisy), (tokens, code_dim).

        Only the tiles covering the stored column are read (a column-range
        read), so ``cell_reads`` bills the restore for exactly the cells
        it touches instead of the entire scale-1 store.
        """
        self._require_built()
        if not 0 <= index < self._count:
            raise IndexError(f"OVT index {index} out of range")
        if 1 not in self.config.scales:
            raise RuntimeError("restore requires the scale-1 store")
        if self.on_cim:
            column = self._scale_matrices[1].read_columns(index, index + 1)
            column = column[:, 0]
        else:
            column = self._digital_vectors[1][:, index]
        if self.config.normalize_scales:
            # Stored columns are unit vectors; the norm travels digitally.
            column = column * self._norms[1][index]
        code_dim = column.size // self.config.pad_length
        full = column.reshape(self.config.pad_length, code_dim)
        return full[:self._row_counts[index]].copy()

    def subarray_count(self) -> int:
        """Physical subarrays in use (drives the cost model)."""
        self._require_built()
        if not self.on_cim:
            return 0
        return sum(m.n_subarrays for m in self._scale_matrices.values())

    def aggregate_stats(self) -> CrossbarStats:
        """Operation counters summed over every scale's store.

        On the vectorized layout each store sums its bank's counter
        vectors, so this is cheap enough for per-request serving
        telemetry.  Digital stores report all-zero counters.
        """
        total = CrossbarStats()
        for matrix in self._scale_matrices.values():
            total.add(matrix.aggregate_stats())
        return total

    def _require_built(self) -> None:
        if self._count == 0:
            raise RuntimeError("search engine is empty; call build() first")

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    SNAPSHOT_VERSION = 1

    def snapshot(self, *, include_state: bool = True) -> dict:
        """Versioned capture of the built store's durable state.

        ``include_state=True`` holds the per-scale :class:`CiMMatrix`
        snapshots (conductances, generator states) plus this engine's own
        generator — everything :meth:`from_snapshot` needs to rebuild the
        store bit-identically without reprogramming.  ``include_state=
        False`` is the recipe form: per-scale counters only, applied with
        :meth:`restore` after a deterministic re-build.
        """
        self._require_built()
        snap = {
            "version": self.SNAPSHOT_VERSION,
            "count": self._count,
            "row_counts": list(self._row_counts),
            "on_cim": self.on_cim,
            "vectorized": self.vectorized,
            "sigma": self.sigma,
            "norms": {str(scale): norms.copy()
                      for scale, norms in self._norms.items()},
        }
        if self.on_cim:
            snap["stores"] = {
                str(scale): matrix.snapshot(include_state=include_state)
                for scale, matrix in self._scale_matrices.items()}
        elif include_state:
            snap["digital"] = {str(scale): stacked.copy()
                               for scale, stacked in
                               self._digital_vectors.items()}
        if include_state:
            snap["rng"] = _rng_state(self._rng)
        return snap

    def restore_counters(self, snap: dict) -> None:
        """Apply a :meth:`snapshot` onto this (already built) engine.

        The recipe path: the engine was re-built deterministically, so
        conductances already match; only the cumulative counters need
        re-seating (a rebuild billed fresh programming pulses the
        original session already paid for).  Not to be confused with
        :meth:`restore`, which reads one stored OVT back from NVM.
        """
        self._check_snapshot(snap)
        if snap["count"] != self._count:
            raise ValueError(
                f"snapshot holds {snap['count']} OVTs, store has "
                f"{self._count}")
        for scale, matrix in self._scale_matrices.items():
            matrix.restore(snap["stores"][str(scale)])

    def _check_snapshot(self, snap: dict) -> None:
        if snap.get("version") != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported CiMSearchEngine snapshot version "
                f"{snap.get('version')!r}")
        if bool(snap["on_cim"]) != self.on_cim:
            raise ValueError("snapshot on_cim flag does not match engine")

    @classmethod
    def from_snapshot(
        cls,
        snap: dict,
        device: NVMDevice,
        *,
        config: SearchConfig = SSA_CONFIG,
        mitigation: MitigationHooks | None = None,
        rng: np.random.Generator | None = None,
    ) -> "CiMSearchEngine":
        """Rebuild a store from a full :meth:`snapshot`, bit-identically.

        No crossbar is programmed: every scale store comes back through
        :meth:`CiMMatrix.from_snapshot`, counters and generator states
        included.
        """
        self = cls(device, sigma=float(snap["sigma"]), config=config,
                   mitigation=mitigation, on_cim=bool(snap["on_cim"]),
                   vectorized=bool(snap["vectorized"]), rng=rng)
        self._check_snapshot(snap)
        self._count = int(snap["count"])
        self._row_counts = [int(n) for n in snap["row_counts"]]
        self._norms = {int(scale): np.asarray(norms, dtype=np.float32).copy()
                       for scale, norms in snap["norms"].items()}
        if self.on_cim:
            self._scale_matrices = {
                int(scale): CiMMatrix.from_snapshot(
                    store, device, mitigation=self.mitigation)
                for scale, store in snap["stores"].items()}
        else:
            self._digital_vectors = {
                int(scale): np.asarray(stacked, dtype=np.float32).copy()
                for scale, stacked in snap["digital"].items()}
        _restore_rng_state(self._rng, snap["rng"])
        return self
