"""Multi-scale average pooling over token matrices (paper Eq. 5).

A token matrix (rows = tokens, columns = encoded dims) is pooled along the
token axis with non-overlapping windows of size 1, 2 and 4 — token level,
adjacent-pair level and broader contextual level.  Matrices are first
padded/truncated to a fixed row count so that pooled representations of a
query and a stored OVT align position-by-position.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pad_rows", "avg_pool_rows", "multi_scale_vectors"]


def pad_rows(matrix: np.ndarray, length: int) -> np.ndarray:
    """Zero-pad or truncate ``matrix`` to exactly ``length`` rows."""
    matrix = np.asarray(matrix, dtype=np.float32)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D token matrix")
    if length <= 0:
        raise ValueError("length must be positive")
    rows, dims = matrix.shape
    if rows >= length:
        return matrix[:length].copy()
    out = np.zeros((length, dims), dtype=np.float32)
    out[:rows] = matrix
    return out


def avg_pool_rows(matrix: np.ndarray, scale: int) -> np.ndarray:
    """Average non-overlapping windows of ``scale`` rows.

    The row count must be divisible by ``scale`` (callers pad first).
    Scale 1 is the identity.
    """
    matrix = np.asarray(matrix, dtype=np.float32)
    if scale <= 0:
        raise ValueError("scale must be positive")
    if scale == 1:
        return matrix.copy()
    rows, dims = matrix.shape
    if rows % scale != 0:
        raise ValueError(f"{rows} rows not divisible by scale {scale}")
    return matrix.reshape(rows // scale, scale, dims).mean(axis=1)


def multi_scale_vectors(matrix: np.ndarray, scales: tuple[int, ...],
                        length: int) -> dict[int, np.ndarray]:
    """Flattened pooled representations of ``matrix`` at each scale."""
    padded = pad_rows(matrix, length)
    return {scale: avg_pool_rows(padded, scale).reshape(-1)
            for scale in scales}
