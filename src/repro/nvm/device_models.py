"""NVM device non-ideality models (paper Table II).

Each device exposes its conductance levels and a per-level Gaussian
variation sigma: programming a cell to level ``l`` yields a normalised
conductance ``l/(L-1) + N(0, (sigma/REFERENCE_SIGMA) * sigma_l)``.

Calibration note: Table II's per-level sigmas average ~0.01 across every
device, while the experiments run "the device variation settings of
Table II with sigma = 0.1" and sweep sigma from 0.025 to 0.150 (Table IV).
We therefore treat the printed values as the per-level *shape* measured at
a reference variation of 0.01 and scale them linearly with the experiment's
global sigma — at sigma=0.1 the effective mid-level cell variation on,
e.g., FeFET3 is 0.146.  This reproduces the paper's observable sensitivity
(unmitigated storage degrades markedly at sigma=0.1).

Note on NVM-1: Table II lists RRAM1 with "1 level"; by the paper's own
definition (an x-level device represents x distinct values) a one-value
memory cannot store data, so we read it as the customary 1-bit (two-state)
RRAM cell with the uniform 0.01 sigma the table gives.  The four FeFET/RRAM
multi-level entries are used exactly as printed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import Registry

__all__ = ["NVMDevice", "NVM_DEVICES", "get_device", "available_devices",
           "register_device", "REFERENCE_SIGMA"]

# Table II values are interpreted as measured at this reference variation.
REFERENCE_SIGMA = 0.01


@dataclass(frozen=True)
class NVMDevice:
    """One non-volatile memory technology entry."""

    name: str            # experiment alias, e.g. "NVM-3"
    device: str          # physical device, e.g. "FeFET3"
    kind: str            # "RRAM" or "FeFET"
    level_sigmas: tuple[float, ...]  # per-level variation at sigma=0.1

    def __post_init__(self):
        if len(self.level_sigmas) < 2:
            raise ValueError("a device needs at least two levels")
        if any(s < 0 for s in self.level_sigmas):
            raise ValueError("level sigmas must be non-negative")
        if self.kind not in ("RRAM", "FeFET"):
            raise ValueError(f"unknown device kind {self.kind!r}")

    @property
    def n_levels(self) -> int:
        return len(self.level_sigmas)

    @property
    def bits_per_cell(self) -> int:
        bits = int(np.log2(self.n_levels))
        if 2 ** bits != self.n_levels:
            raise ValueError(f"{self.n_levels} levels is not a power of two")
        return bits

    def level_values(self) -> np.ndarray:
        """Normalised conductances of each level, evenly spaced in [0, 1]."""
        return np.linspace(0.0, 1.0, self.n_levels, dtype=np.float32)

    def sigma_for_levels(self, levels: np.ndarray,
                         sigma: float = REFERENCE_SIGMA) -> np.ndarray:
        """Per-cell standard deviation for cells programmed to ``levels``.

        ``sigma`` is the global device-variation setting; Table II numbers
        are scaled linearly from their reference point at 0.1.
        """
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        levels = np.asarray(levels)
        if levels.min(initial=0) < 0 or levels.max(initial=0) >= self.n_levels:
            raise ValueError(
                f"level index out of range [0, {self.n_levels}) for {self.name}"
            )
        table = np.asarray(self.level_sigmas, dtype=np.float32)
        return table[levels] * (sigma / REFERENCE_SIGMA)

    def program_noise(self, levels: np.ndarray, sigma: float,
                      rng: np.random.Generator) -> np.ndarray:
        """Sample additive conductance noise for cells at ``levels``."""
        stds = self.sigma_for_levels(levels, sigma)
        return rng.normal(0.0, 1.0, size=levels.shape).astype(np.float32) * stds


def _validate_device(name: str, device: NVMDevice) -> None:
    if not isinstance(device, NVMDevice):
        raise TypeError(f"device {name!r} must be an NVMDevice")


# Device zoo (a Registry, so new memory technologies plug in at runtime).
NVM_DEVICES: Registry[NVMDevice] = Registry("NVM device",
                                            validate=_validate_device)
for _device in (
    NVMDevice("NVM-1", "RRAM1", "RRAM",
              (0.0100, 0.0100)),
    NVMDevice("NVM-2", "FeFET2", "FeFET",
              (0.0067, 0.0135, 0.0135, 0.0067)),
    NVMDevice("NVM-3", "FeFET3", "FeFET",
              (0.0049, 0.0146, 0.0146, 0.0049)),
    NVMDevice("NVM-4", "RRAM4", "RRAM",
              (0.0038, 0.0151, 0.0151, 0.0038)),
    NVMDevice("NVM-5", "FeFET6", "FeFET",
              (0.0026, 0.0155, 0.0155, 0.0026)),
):
    NVM_DEVICES.register(_device.name, _device)
del _device


def register_device(device: NVMDevice, *, overwrite: bool = False) -> NVMDevice:
    """Add a device to the zoo under its experiment alias."""
    return NVM_DEVICES.register(device.name, device, overwrite=overwrite)


def available_devices() -> list[str]:
    """Experiment aliases accepted by :func:`get_device`."""
    return NVM_DEVICES.names()


def get_device(name: str) -> NVMDevice:
    """Look up a device by alias ("NVM-3") or physical name ("FeFET3")."""
    if name in NVM_DEVICES:
        return NVM_DEVICES[name]
    for device in NVM_DEVICES.values():
        if device.device == name:
            return device
    raise KeyError(f"unknown NVM device {name!r}; "
                   f"available: {available_devices()}")
