"""Crossbar array simulation.

A :class:`CrossbarArray` models one physical subarray (default 384x128, the
paper's geometry): cells are programmed to discrete conductance levels with
device-dependent Gaussian variation, read back either cell-wise or through
an analog matrix-vector multiply with ADC quantization at the columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device_models import NVMDevice

__all__ = ["CrossbarArray", "CrossbarStats"]


@dataclass
class CrossbarStats:
    """Operation counters used by the energy/latency model."""

    cells_programmed: int = 0
    write_pulses: int = 0
    mvm_ops: int = 0
    adc_conversions: int = 0
    cell_reads: int = 0


class CrossbarArray:
    """One NVM subarray with noisy programming and analog readout."""

    def __init__(self, device: NVMDevice, *, rows: int = 384, cols: int = 128,
                 sigma: float = 0.1, adc_bits: int = 8,
                 rng: np.random.Generator | None = None):
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        if adc_bits < 2 or adc_bits > 16:
            raise ValueError("adc_bits must be in [2, 16]")
        self.device = device
        self.rows = rows
        self.cols = cols
        self.sigma = sigma
        self.adc_bits = adc_bits
        self._rng = rng or np.random.default_rng(0)
        self._target_levels = np.zeros((rows, cols), dtype=np.int64)
        self._conductance = np.zeros((rows, cols), dtype=np.float32)
        self._programmed = False
        self.stats = CrossbarStats()

    # ------------------------------------------------------------------
    @property
    def conductance(self) -> np.ndarray:
        """The actual (noisy) normalised conductances, shape (rows, cols)."""
        return self._conductance

    @property
    def target_levels(self) -> np.ndarray:
        return self._target_levels

    def program(self, levels: np.ndarray) -> None:
        """Write a full array of level indices with one programming pulse."""
        levels = np.asarray(levels, dtype=np.int64)
        if levels.shape != (self.rows, self.cols):
            raise ValueError(
                f"level array {levels.shape} does not fit {self.rows}x{self.cols}"
            )
        self._target_levels = levels.copy()
        self._conductance = self._program_values(levels)
        self._programmed = True
        self.stats.cells_programmed += levels.size
        self.stats.write_pulses += levels.size

    def reprogram_cells(self, mask: np.ndarray) -> None:
        """Re-pulse the masked cells (used by write-verify loops)."""
        self._require_programmed()
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self._conductance.shape:
            raise ValueError("mask shape mismatch")
        if not mask.any():
            return
        fresh = self._program_values(self._target_levels)
        self._conductance = np.where(mask, fresh, self._conductance)
        self.stats.write_pulses += int(mask.sum())

    def _program_values(self, levels: np.ndarray) -> np.ndarray:
        ideal = self.device.level_values()[levels]
        noise = self.device.program_noise(levels, self.sigma, self._rng)
        return (ideal + noise).astype(np.float32)

    # ------------------------------------------------------------------
    def read_cells(self) -> np.ndarray:
        """Cell-wise readout of conductances in level units (float)."""
        self._require_programmed()
        self.stats.cell_reads += self._conductance.size
        return self._conductance * (self.device.n_levels - 1)

    def matvec(self, x: np.ndarray, *, quantize_output: bool = True) -> np.ndarray:
        """Analog MVM: returns ``x @ G`` per column, optionally ADC-quantized.

        ``x`` has length ``rows``; output has length ``cols``.  The ADC
        quantizes each column current to ``adc_bits`` over the array's
        dynamic range, as NeuroSim does for SAR ADC columns.
        """
        self._require_programmed()
        x = np.asarray(x, dtype=np.float32).reshape(-1)
        if x.size != self.rows:
            raise ValueError(f"input of {x.size} does not match {self.rows} rows")
        currents = x @ self._conductance
        self.stats.mvm_ops += 1
        if not quantize_output:
            # No ADC on an un-quantized (ideal analog) readout: counting
            # conversions here would inflate the energy model.
            return currents
        self.stats.adc_conversions += self.cols
        full_scale = float(np.abs(x).sum()) or 1.0  # max possible current
        step = 2.0 * full_scale / (2 ** self.adc_bits - 1)
        return np.round(currents / step) * step

    def _require_programmed(self) -> None:
        if not self._programmed:
            raise RuntimeError("crossbar has not been programmed")
