"""Crossbar array simulation.

A :class:`CrossbarArray` models one physical subarray (default 384x128, the
paper's geometry): cells are programmed to discrete conductance levels with
device-dependent Gaussian variation, read back either cell-wise or through
an analog matrix-vector multiply with ADC quantization at the columns.

A :class:`TileBank` is the vectorized counterpart of a *list* of
crossbars: ``n_tiles`` subarrays of identical geometry whose conductances
live in one stacked ``(n_tiles, rows, cols)`` array, programmed with one
vectorized noise draw and evaluated for a whole batch of inputs with a
single batched matmul plus one vectorized ADC quantization.  Each tile
draws its programming noise from an independently spawned generator, so a
bank programs to exactly the same conductances as the equivalent per-tile
:class:`CrossbarArray` objects would (and independently of tile iteration
order).  :class:`TileView` adapts one tile of a bank back to the
``CrossbarArray`` read/reprogram/stats surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .device_models import NVMDevice
from ..utils import rng_from_seed

__all__ = ["CrossbarArray", "CrossbarStats", "TileBank", "TileView",
           "SNAPSHOT_VERSION"]

# Version of the snapshot dicts produced by CrossbarArray.snapshot() /
# TileBank.snapshot(); restore() refuses anything it does not understand.
SNAPSHOT_VERSION = 1


@dataclass
class CrossbarStats:
    """Operation counters used by the energy/latency model."""

    cells_programmed: int = 0
    write_pulses: int = 0
    mvm_ops: int = 0
    adc_conversions: int = 0
    cell_reads: int = 0

    def add(self, other: "CrossbarStats") -> "CrossbarStats":
        """Accumulate another counter set into this one (returns self)."""
        self.cells_programmed += other.cells_programmed
        self.write_pulses += other.write_pulses
        self.mvm_ops += other.mvm_ops
        self.adc_conversions += other.adc_conversions
        self.cell_reads += other.cell_reads
        return self

    def subtract(self, other: "CrossbarStats") -> "CrossbarStats":
        """Remove another counter set from this one (returns self).

        Used when a spilled session is restored: the engine un-banks the
        counters it banked at eviction so the resident session's own
        (restored) counters are not counted twice.
        """
        self.cells_programmed -= other.cells_programmed
        self.write_pulses -= other.write_pulses
        self.mvm_ops -= other.mvm_ops
        self.adc_conversions -= other.adc_conversions
        self.cell_reads -= other.cell_reads
        return self

    def to_dict(self) -> dict:
        return {
            "cells_programmed": int(self.cells_programmed),
            "write_pulses": int(self.write_pulses),
            "mvm_ops": int(self.mvm_ops),
            "adc_conversions": int(self.adc_conversions),
            "cell_reads": int(self.cell_reads),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CrossbarStats":
        return cls(**{key: int(value) for key, value in data.items()})


def _check_snapshot_version(snap: dict, kind: str) -> None:
    version = snap.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported {kind} snapshot version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})")


def _rng_state(rng: np.random.Generator) -> dict:
    """A generator's bit-generator state as a plain (codec-safe) dict."""
    state = rng.bit_generator.state
    return {"name": state["bit_generator"], "state": state}


def _restore_rng_state(rng: np.random.Generator, snap: dict) -> None:
    state = snap["state"]
    if state["bit_generator"] != type(rng.bit_generator).__name__:
        raise ValueError(
            f"snapshot holds a {state['bit_generator']} generator state "
            f"but the target uses {type(rng.bit_generator).__name__}")
    rng.bit_generator.state = state


class CrossbarArray:
    """One NVM subarray with noisy programming and analog readout."""

    # The device model is configuration, not state: snapshots are loaded
    # back into an array built with the same device (checked by name).
    _SNAPSHOT_EXCLUDED = ("device",)

    def __init__(self, device: NVMDevice, *, rows: int = 384, cols: int = 128,
                 sigma: float = 0.1, adc_bits: int = 8,
                 rng: np.random.Generator | None = None):
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        if adc_bits < 2 or adc_bits > 16:
            raise ValueError("adc_bits must be in [2, 16]")
        self.device = device
        self.rows = rows
        self.cols = cols
        self.sigma = sigma
        self.adc_bits = adc_bits
        self._rng = rng or rng_from_seed(0)
        self._target_levels = np.zeros((rows, cols), dtype=np.int64)
        self._conductance = np.zeros((rows, cols), dtype=np.float32)
        self._programmed = False
        self.stats = CrossbarStats()

    # ------------------------------------------------------------------
    @property
    def conductance(self) -> np.ndarray:
        """The actual (noisy) normalised conductances, shape (rows, cols)."""
        return self._conductance

    @property
    def target_levels(self) -> np.ndarray:
        return self._target_levels

    def program(self, levels: np.ndarray) -> None:
        """Write a full array of level indices with one programming pulse."""
        levels = np.asarray(levels, dtype=np.int64)
        if levels.shape != (self.rows, self.cols):
            raise ValueError(
                f"level array {levels.shape} does not fit {self.rows}x{self.cols}"
            )
        self._target_levels = levels.copy()
        self._conductance = self._program_values(levels)
        self._programmed = True
        self.stats.cells_programmed += levels.size
        self.stats.write_pulses += levels.size

    def reprogram_cells(self, mask: np.ndarray) -> None:
        """Re-pulse the masked cells (used by write-verify loops)."""
        self._require_programmed()
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self._conductance.shape:
            raise ValueError("mask shape mismatch")
        if not mask.any():
            return
        fresh = self._program_values(self._target_levels)
        self._conductance = np.where(mask, fresh, self._conductance)
        self.stats.write_pulses += int(mask.sum())

    def _program_values(self, levels: np.ndarray) -> np.ndarray:
        ideal = self.device.level_values()[levels]
        noise = self.device.program_noise(levels, self.sigma, self._rng)
        return (ideal + noise).astype(np.float32)

    # ------------------------------------------------------------------
    def read_cells(self) -> np.ndarray:
        """Cell-wise readout of conductances in level units (float)."""
        self._require_programmed()
        self.stats.cell_reads += self._conductance.size
        return self._conductance * (self.device.n_levels - 1)

    def read_cells_range(self, col0: int, col1: int) -> np.ndarray:
        """Read only columns ``[col0, col1)``, counting only those cells.

        This is the column-range read restore-style accesses use: reading
        one stored column must not bill the energy model for the whole
        subarray.
        """
        self._require_programmed()
        if not 0 <= col0 < col1 <= self.cols:
            raise ValueError(
                f"column range [{col0}, {col1}) outside [0, {self.cols})")
        block = self._conductance[:, col0:col1]
        self.stats.cell_reads += block.size
        return block * (self.device.n_levels - 1)

    def matvec(self, x: np.ndarray, *, quantize_output: bool = True) -> np.ndarray:
        """Analog MVM: returns ``x @ G`` per column, optionally ADC-quantized.

        ``x`` has length ``rows``; output has length ``cols``.  The ADC
        quantizes each column current to ``adc_bits`` over the array's
        dynamic range, as NeuroSim does for SAR ADC columns.
        """
        self._require_programmed()
        x = np.asarray(x, dtype=np.float32).reshape(-1)
        if x.size != self.rows:
            raise ValueError(f"input of {x.size} does not match {self.rows} rows")
        currents = x @ self._conductance
        self.stats.mvm_ops += 1
        if not quantize_output:
            # No ADC on an un-quantized (ideal analog) readout: counting
            # conversions here would inflate the energy model.
            return currents
        self.stats.adc_conversions += self.cols
        full_scale = float(np.abs(x).sum()) or 1.0  # max possible current
        step = 2.0 * full_scale / (2 ** self.adc_bits - 1)
        return np.round(currents / step) * step

    def _require_programmed(self) -> None:
        if not self._programmed:
            raise RuntimeError("crossbar has not been programmed")

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def snapshot(self, *, include_state: bool = True) -> dict:
        """Versioned capture of this array's durable state.

        With ``include_state`` the snapshot holds everything needed to
        bring the array back bit-identically without replaying
        programming: raw conductances, target levels, cumulative
        counters, and the programming generator's state.  Without it,
        only the counters travel — the compact form used when the caller
        can replay programming deterministically.
        """
        snap = {
            "version": SNAPSHOT_VERSION,
            "kind": "crossbar",
            "rows": self.rows,
            "cols": self.cols,
            "sigma": self.sigma,
            "adc_bits": self.adc_bits,
            "counters": self.stats.to_dict(),
        }
        if include_state:
            snap["programmed"] = self._programmed
            snap["target_levels"] = self._target_levels.copy()
            snap["conductance"] = self._conductance.copy()
            snap["rng"] = _rng_state(self._rng)
        return snap

    def restore(self, snap: dict) -> None:
        """Apply a :meth:`snapshot`; geometry must match exactly."""
        _check_snapshot_version(snap, "crossbar")
        if (snap["rows"], snap["cols"]) != (self.rows, self.cols):
            raise ValueError(
                f"snapshot geometry {snap['rows']}x{snap['cols']} does not "
                f"match this {self.rows}x{self.cols} array")
        self.stats = CrossbarStats.from_dict(snap["counters"])
        if "conductance" in snap:
            self._target_levels = np.asarray(snap["target_levels"],
                                             dtype=np.int64).copy()
            self._conductance = np.asarray(snap["conductance"],
                                           dtype=np.float32).copy()
            self._programmed = bool(snap["programmed"])
            _restore_rng_state(self._rng, snap["rng"])


class TileBank:
    """``n_tiles`` stacked crossbar subarrays operated as one array.

    The bank keeps one ``(n_tiles, rows, cols)`` conductance stack and
    per-tile operation counters (``(n_tiles,)`` vectors), so programming,
    write-verify re-pulses and batched matrix products are single
    vectorized numpy operations instead of Python loops over tile objects.
    Every tile owns an independently spawned ``rng`` (see
    :func:`repro.utils.spawn_generators`): its noise draws match the
    equivalent standalone :class:`CrossbarArray` bit for bit and do not
    depend on what other tiles drew first.
    """

    # `device` is configuration re-supplied at rebuild; the `_merged*`
    # trio is a lazily invalidated matmul-operand cache keyed off
    # `version`, rebuilt on first use after restore.
    _SNAPSHOT_EXCLUDED = ("device", "_merged", "_merged_groups",
                          "_merged_key")

    def __init__(self, device: NVMDevice, n_tiles: int, *, rows: int = 384,
                 cols: int = 128, sigma: float = 0.1, adc_bits: int = 8,
                 rngs: Sequence[np.random.Generator] | None = None):
        if n_tiles <= 0:
            raise ValueError("n_tiles must be positive")
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        if adc_bits < 2 or adc_bits > 16:
            raise ValueError("adc_bits must be in [2, 16]")
        if rngs is None:
            rngs = [rng_from_seed(i) for i in range(n_tiles)]
        if len(rngs) != n_tiles:
            raise ValueError(f"need {n_tiles} per-tile generators, "
                             f"got {len(rngs)}")
        self.device = device
        self.n_tiles = n_tiles
        self.rows = rows
        self.cols = cols
        self.sigma = sigma
        self.adc_bits = adc_bits
        self._rngs = list(rngs)
        self._target_levels = np.zeros((n_tiles, rows, cols), dtype=np.int64)
        self._conductance = np.zeros((n_tiles, rows, cols), dtype=np.float32)
        self._programmed = False
        # Per-tile counters; aggregate_stats() sums them vectorially.
        self.cells_programmed = np.zeros(n_tiles, dtype=np.int64)
        self.write_pulses = np.zeros(n_tiles, dtype=np.int64)
        self.mvm_ops = np.zeros(n_tiles, dtype=np.int64)
        self.adc_conversions = np.zeros(n_tiles, dtype=np.int64)
        self.cell_reads = np.zeros(n_tiles, dtype=np.int64)
        # Bumped on every conductance mutation so the cached matmul
        # operand can be invalidated lazily.
        self.version = 0
        self._merged: list[np.ndarray] | None = None
        self._merged_groups: list[np.ndarray] | None = None
        self._merged_key: tuple | None = None

    # ------------------------------------------------------------------
    @property
    def conductance(self) -> np.ndarray:
        """The stacked noisy conductances, shape (n_tiles, rows, cols)."""
        return self._conductance

    @property
    def target_levels(self) -> np.ndarray:
        return self._target_levels

    def tile(self, index: int) -> "TileView":
        """A ``CrossbarArray``-like view of one tile of the bank."""
        return TileView(self, index)

    def _fresh_conductance(self, tiles: np.ndarray) -> np.ndarray:
        """Draw fresh noisy conductances for the selected tiles.

        Noise assembly is fully vectorized; the standard-normal variates
        themselves come from each tile's own generator so results are
        identical to per-tile :class:`CrossbarArray` programming.
        """
        levels = self._target_levels[tiles]
        ideal = self.device.level_values()[levels]
        stds = self.device.sigma_for_levels(levels, self.sigma)
        draws = np.stack([self._rngs[int(t)].normal(
            0.0, 1.0, size=(self.rows, self.cols)) for t in tiles])
        noise = draws.astype(np.float32) * stds
        return (ideal + noise).astype(np.float32)

    def program(self, levels: np.ndarray) -> None:
        """Write level indices for every tile in one vectorized pulse."""
        levels = np.asarray(levels, dtype=np.int64)
        if levels.shape != (self.n_tiles, self.rows, self.cols):
            raise ValueError(
                f"level stack {levels.shape} does not fit "
                f"{self.n_tiles}x{self.rows}x{self.cols}")
        self._target_levels = levels.copy()
        self._conductance = self._fresh_conductance(np.arange(self.n_tiles))
        self._programmed = True
        per_tile = self.rows * self.cols
        self.cells_programmed += per_tile
        self.write_pulses += per_tile
        self.version += 1

    def reprogram_cells(self, masks: np.ndarray,
                        tiles: np.ndarray | None = None) -> None:
        """Re-pulse masked cells; ``masks`` aligns with ``tiles``.

        Tiles whose mask is empty draw nothing (matching the per-tile
        reference), so write-verify loops stay reproducible across
        layouts.
        """
        self._require_programmed()
        tiles = (np.arange(self.n_tiles) if tiles is None
                 else np.asarray(tiles, dtype=np.int64))
        masks = np.asarray(masks, dtype=bool)
        if masks.shape != (len(tiles), self.rows, self.cols):
            raise ValueError("mask stack shape mismatch")
        need = masks.any(axis=(1, 2))
        selected = tiles[need]
        if selected.size == 0:
            return
        fresh = self._fresh_conductance(selected)
        current = self._conductance[selected]
        self._conductance[selected] = np.where(masks[need], fresh, current)
        self.write_pulses[selected] += masks[need].sum(axis=(1, 2))
        self.version += 1

    # ------------------------------------------------------------------
    def read_cells(self, tiles: np.ndarray | None = None,
                   col0: int | None = None,
                   col1: int | None = None) -> np.ndarray:
        """Cell-wise readout in level units, optionally column-ranged.

        ``cell_reads`` bills only the cells actually read: ``rows x
        (col1 - col0)`` per selected tile.
        """
        self._require_programmed()
        tiles = (np.arange(self.n_tiles) if tiles is None
                 else np.asarray(tiles, dtype=np.int64))
        col0 = 0 if col0 is None else col0
        col1 = self.cols if col1 is None else col1
        if not 0 <= col0 < col1 <= self.cols:
            raise ValueError(
                f"column range [{col0}, {col1}) outside [0, {self.cols})")
        block = self._conductance[tiles][:, :, col0:col1]
        self.cell_reads[tiles] += self.rows * (col1 - col0)
        return block * (self.device.n_levels - 1)

    def _merged_operand(self, chunk_index: np.ndarray
                        ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Per-group matmul operands, cached against the bank version.

        Tiles sharing an input chunk (same ``chunk_index``) are merged
        column-wise into one ``(rows, group_size * cols)`` matrix, so a
        whole group evaluates with a single GEMM instead of one small
        matvec per tile.  The cache deliberately holds a second full
        copy of the bank's conductances (float32, rebuilt lazily after
        re-pulses): compute speed is bought with ~2x simulation memory,
        the same trade the decode path makes for its KV caches.
        """
        key = (self.version, chunk_index.tobytes())
        if self._merged_key != key:
            groups = [np.flatnonzero(chunk_index == g)
                      for g in range(int(chunk_index.max()) + 1)]
            self._merged = [
                np.ascontiguousarray(
                    self._conductance[tiles].transpose(1, 0, 2).reshape(
                        self.rows, tiles.size * self.cols))
                for tiles in groups
            ]
            self._merged_groups = groups
            self._merged_key = key
        return self._merged, self._merged_groups

    def matmat(self, chunks: np.ndarray,
               chunk_index: np.ndarray | None = None, *,
               quantize_output: bool = True) -> np.ndarray:
        """Batched analog MVM for every tile at once.

        ``chunks`` has shape ``(n_groups, batch, rows)`` — the distinct
        input chunks for each query in the batch — and ``chunk_index``
        maps each tile to its chunk (identity when omitted, i.e. one
        chunk per tile).  Returns per-tile column currents ``(n_tiles,
        batch, cols)`` computed with one GEMM per chunk group, optionally
        pushed through one vectorized ADC quantization (per-tile,
        per-query full scale, as the SAR ADC columns would).  Counters
        scale with the batch width: each tile bills ``batch`` MVMs and
        ``batch * cols`` conversions.
        """
        if chunk_index is None:
            chunk_index = np.arange(self.n_tiles)
        chunks = np.asarray(chunks, dtype=np.float32)
        batch = chunks.shape[1] if chunks.ndim == 3 else 0
        grouped = self.matmat_grouped(chunks, chunk_index,
                                      quantize_output=quantize_output)
        out = np.empty((self.n_tiles, batch, self.cols), dtype=np.float32)
        for currents, tiles in zip(grouped, self._merged_groups):
            out[tiles] = currents.reshape(
                batch, tiles.size, self.cols).transpose(1, 0, 2)
        return out

    def matmat_grouped(self, chunks: np.ndarray, chunk_index: np.ndarray, *,
                       quantize_output: bool = True) -> list[np.ndarray]:
        """The GEMM core of :meth:`matmat`, without the per-tile scatter.

        Returns one ``(batch, group_size * cols)`` current matrix per
        chunk group; columns are blocked per tile in ascending flat-index
        order.  Callers that immediately re-aggregate tiles (the
        bit-sliced shift-add) use this to skip materialising the
        ``(n_tiles, batch, cols)`` layout.
        """
        self._require_programmed()
        chunks = np.asarray(chunks, dtype=np.float32)
        chunk_index = np.asarray(chunk_index, dtype=np.int64)
        if chunk_index.shape != (self.n_tiles,):
            raise ValueError("chunk_index must map every tile to a chunk")
        if (chunks.ndim != 3 or chunks.shape[0] != int(chunk_index.max()) + 1
                or chunks.shape[2] != self.rows):
            raise ValueError(
                f"expected (n_chunks, batch, rows={self.rows}) inputs, "
                f"got {chunks.shape}")
        operands, _ = self._merged_operand(chunk_index)
        if quantize_output:
            # One ADC step per (tile group, query): the full scale
            # depends only on the shared input chunk.
            full_scale = np.abs(chunks).sum(axis=2)  # (n_groups, batch)
            full_scale = np.where(full_scale == 0.0, 1.0, full_scale)
            steps = 2.0 * full_scale / (2 ** self.adc_bits - 1)
        out = []
        for g, (chunk, operand) in enumerate(zip(chunks, operands)):
            currents = chunk @ operand          # (batch, group * cols)
            if quantize_output:
                step = steps[g][:, None]
                currents = np.rint(currents / step) * step
            out.append(currents)
        batch = chunks.shape[1]
        self.mvm_ops += batch
        if quantize_output:
            self.adc_conversions += batch * self.cols
        return out

    def aggregate_stats(self) -> CrossbarStats:
        """Counters summed vectorially over the whole bank."""
        return CrossbarStats(
            cells_programmed=int(self.cells_programmed.sum()),
            write_pulses=int(self.write_pulses.sum()),
            mvm_ops=int(self.mvm_ops.sum()),
            adc_conversions=int(self.adc_conversions.sum()),
            cell_reads=int(self.cell_reads.sum()),
        )

    def _require_programmed(self) -> None:
        if not self._programmed:
            raise RuntimeError("tile bank has not been programmed")

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    def snapshot(self, *, include_state: bool = True) -> dict:
        """Versioned capture of the bank's durable state.

        ``include_state=True`` captures the stacked conductances, target
        levels, per-tile counters, and every tile generator's state —
        enough to :meth:`restore` the bank bit-identically with no
        reprogramming (and no write-pulse billing).  ``include_state=
        False`` captures only the counter vectors, for callers that
        replay programming deterministically and then re-seat the
        counters.
        """
        snap = {
            "version": SNAPSHOT_VERSION,
            "kind": "tile_bank",
            "n_tiles": self.n_tiles,
            "rows": self.rows,
            "cols": self.cols,
            "sigma": self.sigma,
            "adc_bits": self.adc_bits,
            "counters": {
                "cells_programmed": self.cells_programmed.copy(),
                "write_pulses": self.write_pulses.copy(),
                "mvm_ops": self.mvm_ops.copy(),
                "adc_conversions": self.adc_conversions.copy(),
                "cell_reads": self.cell_reads.copy(),
            },
        }
        if include_state:
            snap["programmed"] = self._programmed
            snap["target_levels"] = self._target_levels.copy()
            snap["conductance"] = self._conductance.copy()
            snap["rngs"] = [_rng_state(rng) for rng in self._rngs]
        return snap

    def restore(self, snap: dict) -> None:
        """Apply a :meth:`snapshot`; geometry must match exactly.

        Restoring bumps :attr:`version` so any cached merged matmul
        operand is rebuilt from the restored conductances.
        """
        _check_snapshot_version(snap, "tile bank")
        geometry = (snap["n_tiles"], snap["rows"], snap["cols"])
        if geometry != (self.n_tiles, self.rows, self.cols):
            raise ValueError(
                f"snapshot geometry {geometry} does not match this "
                f"{(self.n_tiles, self.rows, self.cols)} bank")
        for name in ("cells_programmed", "write_pulses", "mvm_ops",
                     "adc_conversions", "cell_reads"):
            setattr(self, name, np.asarray(snap["counters"][name],
                                           dtype=np.int64).copy())
        if "conductance" in snap:
            self._target_levels = np.asarray(snap["target_levels"],
                                             dtype=np.int64).copy()
            self._conductance = np.asarray(snap["conductance"],
                                           dtype=np.float32).copy()
            self._programmed = bool(snap["programmed"])
            for rng, state in zip(self._rngs, snap["rngs"]):
                _restore_rng_state(rng, state)
        self.version += 1


class TileView:
    """One tile of a :class:`TileBank`, with the per-array surface.

    Write-verify loops and tests that walk ``CiMMatrix.iter_tiles()`` see
    the same attributes a standalone :class:`CrossbarArray` exposes
    (``conductance``, ``target_levels``, ``stats``, cell reads and
    re-pulses); mutations go through the bank so its stacked state and
    counters stay authoritative.
    """

    def __init__(self, bank: TileBank, index: int):
        if not 0 <= index < bank.n_tiles:
            raise IndexError(f"tile {index} out of range [0, {bank.n_tiles})")
        self.bank = bank
        self.index = index

    @property
    def device(self) -> NVMDevice:
        return self.bank.device

    @property
    def rows(self) -> int:
        return self.bank.rows

    @property
    def cols(self) -> int:
        return self.bank.cols

    @property
    def sigma(self) -> float:
        return self.bank.sigma

    @property
    def adc_bits(self) -> int:
        return self.bank.adc_bits

    @property
    def conductance(self) -> np.ndarray:
        return self.bank.conductance[self.index]

    @property
    def target_levels(self) -> np.ndarray:
        return self.bank.target_levels[self.index]

    @property
    def stats(self) -> CrossbarStats:
        """A snapshot of this tile's counters."""
        bank, i = self.bank, self.index
        return CrossbarStats(
            cells_programmed=int(bank.cells_programmed[i]),
            write_pulses=int(bank.write_pulses[i]),
            mvm_ops=int(bank.mvm_ops[i]),
            adc_conversions=int(bank.adc_conversions[i]),
            cell_reads=int(bank.cell_reads[i]),
        )

    def read_cells(self) -> np.ndarray:
        return self.bank.read_cells(tiles=np.array([self.index]))[0]

    def read_cells_range(self, col0: int, col1: int) -> np.ndarray:
        return self.bank.read_cells(tiles=np.array([self.index]),
                                    col0=col0, col1=col1)[0]

    def reprogram_cells(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask, dtype=bool)
        self.bank.reprogram_cells(mask[None], tiles=np.array([self.index]))
