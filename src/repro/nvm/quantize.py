"""Value <-> cell-level conversion for NVM storage.

The paper stores autoencoder outputs as int16 and maps them onto 2-bit
cells: every 16-bit word is bit-sliced into 16/bits base-2^bits digits,
one digit per cell (the ``A = 2^12 Vin G3 + 2^8 Vin G2 + ...`` scheme of
paper Fig. 4).  Signed values use an excess offset so all digits are
non-negative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Int16Codec", "slice_to_digits", "digits_to_values",
           "slice_weights"]

_INT16_MIN, _INT16_MAX = -32768, 32767
_OFFSET = 32768  # excess-32768 representation keeps digits unsigned


def slice_to_digits(ints: np.ndarray, bits_per_cell: int) -> np.ndarray:
    """Decompose unsigned 16-bit words into base-2^bits digits.

    Returns an array of shape (n_slices, *ints.shape), least-significant
    digit first.
    """
    if 16 % bits_per_cell != 0:
        raise ValueError(f"bits_per_cell must divide 16, got {bits_per_cell}")
    unsigned = (np.asarray(ints, dtype=np.int64) + _OFFSET)
    if unsigned.min(initial=0) < 0 or unsigned.max(initial=0) > 0xFFFF:
        raise ValueError("values out of int16 range")
    n_slices = 16 // bits_per_cell
    base = 2 ** bits_per_cell
    digits = np.empty((n_slices,) + unsigned.shape, dtype=np.int64)
    remaining = unsigned.copy()
    for s in range(n_slices):
        digits[s] = remaining % base
        remaining //= base
    return digits


def slice_weights(bits_per_cell: int, n_slices: int) -> np.ndarray:
    """Positional weight of each bit-slice, LSB first (float64).

    ``weights[s] = (2 ** bits_per_cell) ** s`` — the shift-add factors the
    digital periphery applies when recombining per-slice column currents.
    """
    if bits_per_cell <= 0:
        raise ValueError("bits_per_cell must be positive")
    if n_slices <= 0:
        raise ValueError("n_slices must be positive")
    base = float(2 ** bits_per_cell)
    return base ** np.arange(n_slices, dtype=np.float64)


def digits_to_values(digits: np.ndarray, bits_per_cell: int) -> np.ndarray:
    """Recompose (possibly noisy, real-valued) digits into signed values.

    Accepts float digits so analog read noise propagates with the correct
    positional weight.
    """
    base = 2 ** bits_per_cell
    n_slices = digits.shape[0]
    if n_slices * bits_per_cell != 16:
        raise ValueError("digit count does not add up to 16 bits")
    weights = base ** np.arange(n_slices, dtype=np.float64)
    total = np.tensordot(weights, digits.astype(np.float64), axes=(0, 0))
    return total - _OFFSET


@dataclass(frozen=True)
class Int16Codec:
    """Symmetric float <-> int16 quantization with a fixed scale."""

    scale: float

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @classmethod
    def fit(cls, values: np.ndarray, margin: float = 1.0) -> "Int16Codec":
        """Choose a scale covering ``values`` (optionally with headroom)."""
        peak = float(np.abs(values).max()) if np.asarray(values).size else 1.0
        peak = max(peak, 1e-8) * margin
        return cls(scale=peak / _INT16_MAX)

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Quantize floats to int16 (clipping at the range ends)."""
        scaled = np.round(np.asarray(values, dtype=np.float64) / self.scale)
        return np.clip(scaled, _INT16_MIN, _INT16_MAX).astype(np.int16)

    def decode(self, ints: np.ndarray) -> np.ndarray:
        """Dequantize (accepts float arrays so read noise passes through)."""
        return (np.asarray(ints, dtype=np.float64) * self.scale).astype(np.float32)
