"""NVM device models, quantization and crossbar-array simulation."""

from .crossbar import CrossbarArray, CrossbarStats, TileBank, TileView
from .device_models import (
    NVM_DEVICES,
    register_device,
    REFERENCE_SIGMA,
    NVMDevice,
    available_devices,
    get_device,
)
from .quantize import (
    Int16Codec,
    digits_to_values,
    slice_to_digits,
    slice_weights,
)

__all__ = [
    "NVMDevice", "NVM_DEVICES", "get_device", "available_devices",
    "register_device",
    "REFERENCE_SIGMA",
    "Int16Codec", "slice_to_digits", "digits_to_values", "slice_weights",
    "CrossbarArray", "CrossbarStats", "TileBank", "TileView",
]
