"""Noise-mitigation baselines: SWV, CxDNN, CorrectNet (paper Table I).

The schemes live in a :class:`~repro.utils.Registry`, so new mitigations
plug in without touching the framework:

    from repro.mitigation import register_mitigation

    @register_mitigation("mymiti")
    class MyMitigation: ...

and then ``FrameworkConfig(mitigation="mymiti")`` selects it.
"""

from ..cim.accelerator import NullMitigation
from ..utils import Registry
from .correctnet import CorrectNetMitigation
from .cxdnn import CxDNNCompensation
from .swv import SelectiveWriteVerify

__all__ = ["SelectiveWriteVerify", "CxDNNCompensation",
           "CorrectNetMitigation", "NullMitigation", "make_mitigation",
           "available_mitigations", "MITIGATION_REGISTRY",
           "register_mitigation"]

# name -> zero-argument factory (typically the class itself).
MITIGATION_REGISTRY: Registry = Registry("mitigation")
MITIGATION_REGISTRY.register("none", NullMitigation)
MITIGATION_REGISTRY.register("swv", SelectiveWriteVerify)
MITIGATION_REGISTRY.register("cxdnn", CxDNNCompensation)
MITIGATION_REGISTRY.register("correctnet", CorrectNetMitigation)


def register_mitigation(name: str, factory=None, *, overwrite: bool = False):
    """Register a mitigation factory (usable as a class decorator)."""
    return MITIGATION_REGISTRY.register(name, factory, overwrite=overwrite)


def available_mitigations() -> list[str]:
    """Names accepted by :func:`make_mitigation`."""
    return MITIGATION_REGISTRY.names()


def make_mitigation(name: str):
    """Instantiate a mitigation strategy by name."""
    return MITIGATION_REGISTRY[name]()
