"""Noise-mitigation baselines: SWV, CxDNN, CorrectNet (paper Table I)."""

from ..cim.accelerator import NullMitigation
from .correctnet import CorrectNetMitigation
from .cxdnn import CxDNNCompensation
from .swv import SelectiveWriteVerify

__all__ = ["SelectiveWriteVerify", "CxDNNCompensation",
           "CorrectNetMitigation", "NullMitigation", "make_mitigation",
           "available_mitigations"]

_FACTORIES = {
    "none": NullMitigation,
    "swv": SelectiveWriteVerify,
    "cxdnn": CxDNNCompensation,
    "correctnet": CorrectNetMitigation,
}


def available_mitigations() -> list[str]:
    """Names accepted by :func:`make_mitigation`."""
    return sorted(_FACTORIES)


def make_mitigation(name: str):
    """Instantiate a mitigation strategy by name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown mitigation {name!r}; available: {available_mitigations()}"
        ) from None
