"""Selective write-verify (SWV), after SWIM (Yan et al., DAC 2022).

SWIM's insight: write-verify is expensive, so only verify the weights (here:
cells) whose error actually matters.  In a bit-sliced int16 layout the error
contribution of a cell grows with its positional weight, so SWV verifies the
most-significant slices only, re-pulsing cells whose conductance deviates
from the target by more than a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SelectiveWriteVerify"]


@dataclass
class SelectiveWriteVerify:
    """Write-verify on the top ``verify_slices`` bit planes."""

    verify_slices: int = 2          # MSB slices to verify
    tolerance_levels: float = 0.15  # allowed |deviation|, conductance units
    max_iterations: int = 1         # SWIM's point: a tight pulse budget

    name = "swv"

    def __post_init__(self):
        if self.verify_slices <= 0:
            raise ValueError("verify_slices must be positive")
        if self.tolerance_levels <= 0:
            raise ValueError("tolerance_levels must be positive")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")

    # ------------------------------------------------------------------
    def post_program(self, matrix) -> None:
        first_verified = matrix.n_slices - self.verify_slices
        for slice_index, tile in matrix.iter_tiles_with_slice():
            if slice_index < first_verified:
                continue
            for _ in range(self.max_iterations):
                read = tile.read_cells() / (tile.device.n_levels - 1)
                target = tile.device.level_values()[tile.target_levels]
                error = np.abs(read - target)
                mask = error > self.tolerance_levels
                if not mask.any():
                    break
                tile.reprogram_cells(mask)

    def prepare_values(self, values: np.ndarray) -> np.ndarray:
        return values

    def correct_output(self, matrix, outputs: np.ndarray) -> np.ndarray:
        return outputs

    def correct_read(self, matrix, values: np.ndarray) -> np.ndarray:
        return values
