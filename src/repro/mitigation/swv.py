"""Selective write-verify (SWV), after SWIM (Yan et al., DAC 2022).

SWIM's insight: write-verify is expensive, so only verify the weights (here:
cells) whose error actually matters.  In a bit-sliced int16 layout the error
contribution of a cell grows with its positional weight, so SWV verifies the
most-significant slices only, re-pulsing cells whose conductance deviates
from the target by more than a tolerance.

Both ``CiMMatrix`` layouts are supported: the vectorized path verifies all
tiles of the MSB slices with stacked reads and one masked re-pulse per
round, the reference path walks tile objects.  Because each tile draws
noise from its own spawned generator, the two produce bit-identical
conductances and identical operation counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SelectiveWriteVerify"]


@dataclass
class SelectiveWriteVerify:
    """Write-verify on the top ``verify_slices`` bit planes."""

    verify_slices: int = 2          # MSB slices to verify
    tolerance_levels: float = 0.15  # allowed |deviation|, conductance units
    max_iterations: int = 1         # SWIM's point: a tight pulse budget

    name = "swv"

    def __post_init__(self):
        if self.verify_slices <= 0:
            raise ValueError("verify_slices must be positive")
        if self.tolerance_levels <= 0:
            raise ValueError("tolerance_levels must be positive")
        if self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")

    # ------------------------------------------------------------------
    def post_program(self, matrix) -> None:
        if getattr(matrix, "vectorized", False):
            self._post_program_bank(matrix)
            return
        first_verified = matrix.n_slices - self.verify_slices
        for slice_index, tile in matrix.iter_tiles_with_slice():
            if slice_index < first_verified:
                continue
            for _ in range(self.max_iterations):
                read = tile.read_cells() / (tile.device.n_levels - 1)
                target = tile.device.level_values()[tile.target_levels]
                error = np.abs(read - target)
                mask = error > self.tolerance_levels
                if not mask.any():
                    break
                tile.reprogram_cells(mask)

    def _post_program_bank(self, matrix) -> None:
        """Verify the MSB slices on the stacked layout.

        Per round: one stacked read of the still-active tiles, one masked
        re-pulse of those whose error exceeds the tolerance.  Tiles drop
        out of the round loop as soon as they pass, exactly like the
        per-tile reference — reads, re-pulse counts and noise draws match
        it one for one.
        """
        bank = matrix.bank
        first_verified = max(matrix.n_slices - self.verify_slices, 0)
        active = np.concatenate([
            matrix.slice_tile_indices(s)
            for s in range(first_verified, matrix.n_slices)
        ])
        level_values = bank.device.level_values()
        level_gain = bank.device.n_levels - 1
        for _ in range(self.max_iterations):
            if active.size == 0:
                break
            read = bank.read_cells(tiles=active) / level_gain
            target = level_values[bank.target_levels[active]]
            masks = np.abs(read - target) > self.tolerance_levels
            failing = masks.any(axis=(1, 2))
            if not failing.any():
                break
            bank.reprogram_cells(masks[failing], tiles=active[failing])
            active = active[failing]

    def prepare_values(self, values: np.ndarray) -> np.ndarray:
        return values

    def correct_output(self, matrix, outputs: np.ndarray) -> np.ndarray:
        return outputs

    def correct_read(self, matrix, values: np.ndarray) -> np.ndarray:
        return values

    def correct_read_columns(self, matrix, values: np.ndarray,
                             col0: int, col1: int) -> np.ndarray:
        return values
