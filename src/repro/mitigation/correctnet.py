"""CorrectNet-style error suppression and compensation (DATE 2023).

CorrectNet combines (i) *error suppression* — bounding the dynamic range of
the values written to the crossbar so that outlier weights do not inflate
the quantization scale and amplify relative noise — with (ii) *error
compensation* — an affine output correction learned from calibration data.
Here suppression clips values at ``clip_sigmas`` standard deviations and
compensation fits a per-column affine map from the noisy read-back to the
ideal stored values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CorrectNetMitigation"]

_EPS = 1e-12


@dataclass
class CorrectNetMitigation:
    """Value clipping + per-column affine read/output correction."""

    clip_sigmas: float = 3.0

    name = "correctnet"

    def __post_init__(self):
        if self.clip_sigmas <= 0:
            raise ValueError("clip_sigmas must be positive")

    def prepare_values(self, values: np.ndarray) -> np.ndarray:
        mean = float(values.mean())
        std = float(values.std())
        if std == 0.0:
            return values
        bound = self.clip_sigmas * std
        return np.clip(values, mean - bound, mean + bound)

    def post_program(self, matrix) -> None:
        actual = matrix.read_matrix(corrected=False)
        ideal = matrix.ideal_matrix()
        # Per-column affine model of the *systematic* error:
        # actual ~ a * ideal + b, inverted at read time as (v - b) / a.
        # Regressing on the ideal keeps unbiased stochastic noise from
        # shrinking the correction (see CxDNN note).
        mean_a = actual.mean(axis=0)
        mean_i = ideal.mean(axis=0)
        centered_a = actual - mean_a
        centered_i = ideal - mean_i
        slope = (np.sum(centered_a * centered_i, axis=0)
                 / (np.sum(centered_i * centered_i, axis=0) + _EPS))
        slope = np.where(np.abs(slope) < 0.05, 1.0, slope)
        intercept = mean_a - slope * mean_i
        matrix.calibration["affine_slope"] = slope.astype(np.float32)
        matrix.calibration["affine_intercept"] = intercept.astype(np.float32)
        # Output compensation works on column sums: the intercept term would
        # need the input sum, so MVM outputs only invert the slope.

    def _coeffs(self, matrix) -> tuple[np.ndarray, np.ndarray]:
        slope = matrix.calibration.get("affine_slope")
        intercept = matrix.calibration.get("affine_intercept")
        if slope is None or intercept is None:
            raise RuntimeError("CorrectNet calibration missing; program first")
        return slope, intercept

    def correct_output(self, matrix, outputs: np.ndarray) -> np.ndarray:
        """Invert the per-column slope; ``outputs`` may be (n,) or (B, n).

        The slope broadcasts over a trailing column axis, so batched MVMs
        from the stacked tile layout are corrected per query exactly as B
        sequential outputs would be.
        """
        slope, _ = self._coeffs(matrix)
        return outputs / slope

    def correct_read(self, matrix, values: np.ndarray) -> np.ndarray:
        slope, intercept = self._coeffs(matrix)
        return (values - intercept[None, :]) / slope[None, :]

    def correct_read_columns(self, matrix, values: np.ndarray,
                             col0: int, col1: int) -> np.ndarray:
        slope, intercept = self._coeffs(matrix)
        return ((values - intercept[None, col0:col1])
                / slope[None, col0:col1])
