"""CxDNN-style compensation (Jain & Raghunathan, TECS 2019).

CxDNN compensates resistive-crossbar non-idealities in software with
per-column scaling factors calibrated once after programming.  Here the
gains are least-squares fits of the actual (noisy) stored columns against
their ideal values, applied to every MVM output and matrix read-back.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CxDNNCompensation"]

_EPS = 1e-12


@dataclass
class CxDNNCompensation:
    """Per-column multiplicative output compensation."""

    name = "cxdnn"

    def post_program(self, matrix) -> None:
        actual = matrix.read_matrix(corrected=False)
        ideal = matrix.ideal_matrix()
        # Gain of the *systematic* column error: project the actual read
        # onto the ideal column and invert that factor.  (Fitting against
        # the noisy read instead would act as Wiener shrinkage and crush
        # the stored values — compensation must not attenuate the signal.)
        projection = np.sum(actual * ideal, axis=0) / (
            np.sum(ideal * ideal, axis=0) + _EPS)
        safe = np.where(np.abs(projection) < 0.05, 1.0, projection)
        matrix.calibration["column_gain"] = (1.0 / safe).astype(np.float32)

    def prepare_values(self, values: np.ndarray) -> np.ndarray:
        return values

    def _gain(self, matrix) -> np.ndarray:
        gain = matrix.calibration.get("column_gain")
        if gain is None:
            raise RuntimeError("CxDNN calibration missing; program first")
        return gain

    def correct_output(self, matrix, outputs: np.ndarray) -> np.ndarray:
        """Apply the per-column gains; ``outputs`` may be (n,) or (B, n).

        The gain vector broadcasts over a trailing column axis, so batched
        MVMs from the stacked tile layout are corrected per query exactly
        as B sequential outputs would be.
        """
        return outputs * self._gain(matrix)

    def correct_read(self, matrix, values: np.ndarray) -> np.ndarray:
        return values * self._gain(matrix)[None, :]

    def correct_read_columns(self, matrix, values: np.ndarray,
                             col0: int, col1: int) -> np.ndarray:
        return values * self._gain(matrix)[None, col0:col1]
