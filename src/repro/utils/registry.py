"""A small string-keyed registry, the framework's extensibility primitive.

Every pluggable axis of the system — edge-LLM architectures, NVM device
models, noise-mitigation schemes, retrieval strategies — is a mapping from
a short name to an implementation object.  :class:`Registry` gives them one
shared shape: dict-style lookup (it is a :class:`collections.abc.Mapping`,
so existing ``REGISTRY[name]`` / ``REGISTRY.values()`` call sites keep
working), a uniform ``KeyError`` that lists the valid names, and a
``register`` method usable directly or as a decorator so downstream code
can plug in new entries without touching the framework:

    @MITIGATIONS.register("mymiti")
    class MyMitigation: ...

    DEVICES.register("NVM-9", my_device)
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from typing import Callable, Generic, TypeVar

T = TypeVar("T")

__all__ = ["Registry"]


class Registry(Mapping, Generic[T]):
    """An ordered, string-keyed registry of named implementations."""

    def __init__(self, kind: str, *,
                 validate: Callable[[str, T], None] | None = None):
        self.kind = kind
        self._validate = validate
        self._entries: dict[str, T] = {}

    # ------------------------------------------------------------------
    # Mapping interface (keeps dict-style call sites working).
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown {self.kind} {name!r}; available: {self.names()}"
            ) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, entries={self.names()})"

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        """Sorted names of every registered entry."""
        return sorted(self._entries)

    def register(self, name: str, obj: T | None = None, *,
                 overwrite: bool = False):
        """Register ``obj`` under ``name``; decorator form when obj is None.

        Re-registering an existing name is an error unless ``overwrite=True``
        (plugins should choose fresh names; experiments may deliberately
        swap an entry).
        """

        def _add(value: T) -> T:
            if not name or not isinstance(name, str):
                raise ValueError(f"{self.kind} name must be a non-empty string")
            if name in self._entries and not overwrite:
                raise ValueError(
                    f"{self.kind} {name!r} already registered; "
                    f"pass overwrite=True to replace it"
                )
            if self._validate is not None:
                self._validate(name, value)
            self._entries[name] = value
            return value

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> T:
        """Remove and return an entry (tests and plugins use this)."""
        return self._entries.pop(name)
