"""Shared utilities: deterministic RNG management and validation helpers."""

from .rng import derive_rng, rng_from_seed, spawn_seeds

__all__ = ["rng_from_seed", "derive_rng", "spawn_seeds"]
