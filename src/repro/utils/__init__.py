"""Shared utilities: deterministic RNG management and the registry
primitive every pluggable axis (models, devices, mitigations, retrieval
strategies) is built on."""

from .registry import Registry
from .rng import derive_rng, rng_from_seed, spawn_generators, spawn_seeds

__all__ = ["rng_from_seed", "derive_rng", "spawn_seeds",
           "spawn_generators", "Registry"]
