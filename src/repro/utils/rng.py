"""Deterministic random number management.

Every stochastic component in the repository draws from a
``numpy.random.Generator`` derived here, so a single experiment seed pins
the entire pipeline (data synthesis, initialisation, noise injection, device
variation) without any global state.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["rng_from_seed", "derive_rng", "spawn_seeds", "spawn_generators"]


def rng_from_seed(seed: int) -> np.random.Generator:
    """Create a generator from an integer seed."""
    return np.random.default_rng(int(seed))


def derive_rng(seed: int, *labels: str | int) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a label path.

    Labels make the stream immune to call-order changes: the stream for
    ``("user", 3, "buffer")`` is the same no matter what else was sampled
    first.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    child = int.from_bytes(digest.digest()[:8], "little")
    return np.random.default_rng(child)


def spawn_seeds(seed: int, count: int, *labels: str | int) -> list[int]:
    """Derive ``count`` independent integer seeds below 2**31."""
    rng = derive_rng(seed, *labels, "spawn")
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=count)]


def spawn_generators(rng: np.random.Generator,
                     count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent child generators from ``rng``.

    Children are derived through the generator's ``SeedSequence`` (so the
    parent's bit stream is untouched and successive spawns from the same
    parent never repeat), giving each consumer — e.g. each crossbar tile —
    its own stream whose draws do not depend on how many values *other*
    consumers drew first.  Falls back to stream-derived integer seeds for
    generators built without a seed sequence.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    try:
        return list(rng.spawn(count))
    except (AttributeError, TypeError):
        seeds = rng.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
