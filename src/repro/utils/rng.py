"""Deterministic random number management.

Every stochastic component in the repository draws from a
``numpy.random.Generator`` derived here, so a single experiment seed pins
the entire pipeline (data synthesis, initialisation, noise injection, device
variation) without any global state.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["rng_from_seed", "derive_rng", "spawn_seeds"]


def rng_from_seed(seed: int) -> np.random.Generator:
    """Create a generator from an integer seed."""
    return np.random.default_rng(int(seed))


def derive_rng(seed: int, *labels: str | int) -> np.random.Generator:
    """Derive an independent generator from ``seed`` and a label path.

    Labels make the stream immune to call-order changes: the stream for
    ``("user", 3, "buffer")`` is the same no matter what else was sampled
    first.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    child = int.from_bytes(digest.digest()[:8], "little")
    return np.random.default_rng(child)


def spawn_seeds(seed: int, count: int, *labels: str | int) -> list[int]:
    """Derive ``count`` independent integer seeds below 2**31."""
    rng = derive_rng(seed, *labels, "spawn")
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=count)]
