"""The paper's contribution: RS + NT + SSA composed into NVCiM-PT."""

from .framework import (
    FrameworkConfig,
    NVCiMDeployment,
    NVCiMPT,
    OVTLibrary,
    OVTTrainingPipeline,
)
from .noise_training import NoiseAwareTrainer, NoiseInjectionConfig, NoiseInjector
from .selection import (
    KSelectionConfig,
    SelectionResult,
    compute_k,
    cosine_similarity,
    kmeans,
    select_representatives,
)

__all__ = [
    "compute_k", "kmeans", "cosine_similarity", "select_representatives",
    "KSelectionConfig", "SelectionResult",
    "NoiseInjectionConfig", "NoiseInjector", "NoiseAwareTrainer",
    "FrameworkConfig", "OVTLibrary", "OVTTrainingPipeline",
    "NVCiMDeployment", "NVCiMPT",
]
