"""The NVCiM-PT framework (paper Fig. 3).

Two phases, mirroring the paper's training and inference modes:

* :class:`OVTTrainingPipeline` — consumes the user's data stream through
  the bounded buffer; each time the buffer fills it runs Representative
  Selection, trains one OVT per representative (noise-aware if configured),
  and refreshes the autoencoder with the non-representative remainder.
  The result is an :class:`OVTLibrary`.
* :class:`NVCiMDeployment` — encodes the library with the autoencoder,
  programs the scaled copies onto NVM crossbars, and serves queries:
  embed -> encode -> in-memory scaled search -> restore -> decode ->
  prepend as soft prompt -> generate.

:class:`NVCiMPT` is the convenience facade combining both.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..compression import AutoencoderConfig, OVTAutoencoder
from ..data.buffer import DataBuffer
from ..data.lamp import Sample
from ..llm.generation import GenerationConfig, generate
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from ..mitigation import make_mitigation
from ..nvm.device_models import get_device
from ..retrieval import MIPS_CONFIG, SSA_CONFIG, CiMSearchEngine, SearchConfig
from ..tuning import TuningConfig, VanillaPromptTuner, VirtualTokens
from ..utils import derive_rng
from .noise_training import NoiseAwareTrainer, NoiseInjectionConfig
from .selection import KSelectionConfig, select_representatives

__all__ = ["FrameworkConfig", "OVTLibrary", "OVTTrainingPipeline",
           "NVCiMDeployment", "NVCiMPT"]


@dataclass(frozen=True)
class FrameworkConfig:
    """Everything that defines one NVCiM-PT configuration."""

    buffer_capacity: int = 25
    device_name: str = "NVM-3"
    sigma: float = 0.1                    # device variation (Table IV knob)
    retrieval: str = "ssa"                # "ssa" or "mips"
    mitigation: str = "none"              # none|swv|cxdnn|correctnet
    noise_aware: bool = True              # the paper's NT component
    code_dim: int = 48                    # autoencoder embedding size
    tuning: TuningConfig = field(default_factory=TuningConfig)
    k_selection: KSelectionConfig = field(default_factory=KSelectionConfig)
    noise_factors: tuple[float, float, float, float] = (1.0, 1.6, 1.6, 1.0)
    search: SearchConfig | None = None    # derived from `retrieval` if None
    on_cim: bool = True                   # False = ideal digital store
    seed: int = 0

    def __post_init__(self):
        if self.buffer_capacity <= 0:
            raise ValueError("buffer_capacity must be positive")
        if self.retrieval not in ("ssa", "mips"):
            raise ValueError("retrieval must be 'ssa' or 'mips'")

    def search_config(self) -> SearchConfig:
        if self.search is not None:
            return self.search
        return SSA_CONFIG if self.retrieval == "ssa" else MIPS_CONFIG

    def noise_config(self) -> NoiseInjectionConfig:
        f1, f2, f3, f4 = self.noise_factors
        return NoiseInjectionConfig(sigma=self.sigma, f1=f1, f2=f2, f3=f3,
                                    f4=f4, seed=self.seed)


@dataclass
class OVTLibrary:
    """The trained artefacts: OVTs plus the autoencoder that encodes them."""

    ovts: list[VirtualTokens]
    autoencoder: OVTAutoencoder
    noise_aware: bool

    def __len__(self) -> int:
        return len(self.ovts)


def _token_rows(model: TinyCausalLM, tokenizer: Tokenizer,
                samples: list[Sample]) -> np.ndarray:
    """Stack normalised token-embedding rows (AE training data).

    Each sample's token matrix is normalised to unit peak, matching how
    matrices are scaled when encoded for storage/queries.
    """
    rows = []
    for sample in samples:
        matrix = model.token_embedding.weight.data[
            tokenizer.encode(sample.input_text)]
        rows.append(matrix / OVTAutoencoder.matrix_scale(matrix))
    return np.concatenate(rows, axis=0)


class OVTTrainingPipeline:
    """Training mode: stream -> buffer -> RS -> (noise-aware) PT -> library."""

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: FrameworkConfig = FrameworkConfig()):
        self.model = model
        self.tokenizer = tokenizer
        self.config = config
        self.buffer = DataBuffer(config.buffer_capacity)
        self.library = OVTLibrary(
            ovts=[],
            autoencoder=OVTAutoencoder(AutoencoderConfig(
                input_dim=model.config.d_model, code_dim=config.code_dim,
                seed=config.seed)),
            noise_aware=config.noise_aware,
        )
        self._epochs_completed = 0

    # ------------------------------------------------------------------
    def observe(self, sample: Sample) -> bool:
        """Add one sample; returns True when a training epoch just ran."""
        ids = self.tokenizer.encode(sample.input_text)
        embedding = self.model.embed_text_vector(ids)
        self.buffer.add(sample, embedding)
        if self.buffer.is_full:
            self._run_epoch()
            return True
        return False

    def run(self, samples: list[Sample]) -> OVTLibrary:
        """Stream all samples through the buffer; return the library."""
        for sample in samples:
            self.observe(sample)
        return self.library

    # ------------------------------------------------------------------
    def _run_epoch(self) -> None:
        samples, embeddings = self.buffer.take_all()
        selection = select_representatives(
            embeddings, k_config=self.config.k_selection,
            seed=self.config.seed + self._epochs_completed)
        representatives = [samples[i] for i in selection.representative_indices]
        remainder = [samples[i] for i in selection.remainder_indices()]

        tuning = replace(self.config.tuning,
                         seed=self.config.seed + self._epochs_completed)
        if self.config.noise_aware:
            trainer = NoiseAwareTrainer(self.model, self.tokenizer, tuning,
                                        self.config.noise_config())
        else:
            trainer = VanillaPromptTuner(self.model, self.tokenizer, tuning)
        fresh_ovts = []
        for representative in representatives:
            artifact = trainer.fit([representative])
            fresh_ovts.append(artifact.soft_prompt)
        self.library.ovts.extend(fresh_ovts)

        # Autoencoder upkeep (paper: the buffer remainder updates the AE).
        # The freshly trained OVTs join the update set so the encoder also
        # covers virtual-token statistics, not just word embeddings.
        pieces = [_token_rows(self.model, self.tokenizer,
                              remainder or representatives)]
        for ovt in fresh_ovts:
            pieces.append(ovt.matrix
                          / OVTAutoencoder.matrix_scale(ovt.matrix))
        rows = np.concatenate(pieces, axis=0)
        if self.library.autoencoder.is_trained:
            self.library.autoencoder.update(rows)
        else:
            self.library.autoencoder.fit(rows)
        self._epochs_completed += 1


class NVCiMDeployment:
    """Inference mode: the library programmed onto NVM, serving queries."""

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 library: OVTLibrary,
                 config: FrameworkConfig = FrameworkConfig()):
        if not library.ovts:
            raise ValueError("cannot deploy an empty OVT library")
        if not library.autoencoder.is_trained:
            raise ValueError("autoencoder must be trained before deployment")
        self.model = model
        self.tokenizer = tokenizer
        self.library = library
        self.config = config
        mitigation = (make_mitigation(config.mitigation)
                      if config.mitigation != "none" else None)
        self.engine = CiMSearchEngine(
            get_device(config.device_name),
            sigma=config.sigma,
            config=config.search_config(),
            mitigation=mitigation,
            on_cim=config.on_cim,
            rng=derive_rng(config.seed, "deployment", config.device_name,
                           config.mitigation, config.retrieval),
        )
        encoded = []
        self._scales: list[float] = []
        for ovt in library.ovts:
            codes, scale = library.autoencoder.encode_matrix(ovt.matrix)
            encoded.append(codes)
            self._scales.append(scale)
        self.engine.build(encoded)

    # ------------------------------------------------------------------
    def encode_query(self, input_text: str) -> np.ndarray:
        """User input -> token embedding rows -> autoencoder codes."""
        ids = self.tokenizer.encode(input_text)
        rows = self.model.token_embedding.weight.data[ids]
        codes, _ = self.library.autoencoder.encode_matrix(rows)
        return codes

    def retrieve(self, input_text: str) -> int:
        """Index of the OVT the scaled search picks for this input."""
        return self.engine.retrieve(self.encode_query(input_text))

    def restored_prompt(self, index: int) -> np.ndarray:
        """Read an OVT back from NVM and decode it to model space."""
        codes = self.engine.restore(index)
        return self.library.autoencoder.decode_matrix(codes,
                                                      self._scales[index])

    def answer(self, input_text: str,
               generation: GenerationConfig | None = None) -> str:
        """Full inference path: retrieve, restore, generate."""
        generation = generation or GenerationConfig(
            max_new_tokens=100, temperature=0.1, eos_id=self.tokenizer.eos_id)
        index = self.retrieve(input_text)
        prompt = self.restored_prompt(index)
        ids = self.tokenizer.encode(input_text)
        out = generate(self.model, ids, generation, soft_prompt=prompt)
        return self.tokenizer.decode(out)


class NVCiMPT:
    """Facade: continuous learning plus NVM-backed inference."""

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: FrameworkConfig = FrameworkConfig()):
        self.model = model
        self.tokenizer = tokenizer
        self.config = config
        self.pipeline = OVTTrainingPipeline(model, tokenizer, config)
        self._deployment: NVCiMDeployment | None = None

    @property
    def library(self) -> OVTLibrary:
        return self.pipeline.library

    def observe(self, sample: Sample) -> None:
        """Training mode: absorb one user interaction."""
        if self.pipeline.observe(sample):
            self._deployment = None  # library changed; reprogram lazily

    def answer(self, input_text: str,
               generation: GenerationConfig | None = None) -> str:
        """Inference mode: answer with the best stored OVT."""
        if not self.library.ovts:
            raise RuntimeError(
                "no OVTs trained yet; feed more samples via observe()"
            )
        if self._deployment is None:
            self._deployment = NVCiMDeployment(self.model, self.tokenizer,
                                               self.library, self.config)
        return self._deployment.answer(input_text, generation)
