"""The NVCiM-PT framework (paper Fig. 3).

Two phases, mirroring the paper's training and inference modes:

* :class:`OVTTrainingPipeline` — consumes the user's data stream through
  the bounded buffer; each time the buffer fills it runs Representative
  Selection, trains one OVT per representative (noise-aware if configured),
  and refreshes the autoencoder with the non-representative remainder.
  The result is an :class:`OVTLibrary`.
* :class:`NVCiMDeployment` — encodes the library with the autoencoder,
  programs the scaled copies onto NVM crossbars, and serves queries:
  embed -> encode -> in-memory scaled search -> restore -> decode ->
  prepend as soft prompt -> generate.

:class:`NVCiMPT` is the convenience facade combining both.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields, replace

import numpy as np

from ..compression import AutoencoderConfig, OVTAutoencoder
from ..data.buffer import DataBuffer
from ..data.lamp import Sample
from ..llm.generation import GenerationConfig, generate
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from ..mitigation import MITIGATION_REGISTRY, make_mitigation
from ..nvm.device_models import get_device
from ..retrieval import RETRIEVAL_REGISTRY, CiMSearchEngine, SearchConfig
from ..tuning import TuningConfig, VanillaPromptTuner, VirtualTokens
from ..utils import derive_rng
from .noise_training import NoiseAwareTrainer, NoiseInjectionConfig
from .selection import KSelectionConfig, select_representatives

__all__ = ["FrameworkConfig", "OVTLibrary", "OVTTrainingPipeline",
           "NVCiMDeployment", "NVCiMPT"]


# Named configurations (JSON-style dicts, resolved by ``from_dict``) for the
# paper's experiment settings plus common development variants.
_PRESETS: dict[str, dict] = {
    # Paper main grid: buffer 25, FeFET3, sigma 0.1, SSA + noise-aware PT.
    "table1": {"buffer_capacity": 25, "device_name": "NVM-3", "sigma": 0.1,
               "retrieval": "ssa", "mitigation": "none", "noise_aware": True},
    # Buffer-size sweep base (Table III): same cell, buffer overridden per run.
    "table3": {"buffer_capacity": 25, "device_name": "NVM-3", "sigma": 0.1,
               "retrieval": "ssa", "noise_aware": True},
    # Device-variation sweep base (Table IV): sigma overridden per run.
    "table4": {"buffer_capacity": 25, "device_name": "NVM-3", "sigma": 0.1,
               "retrieval": "ssa", "noise_aware": True},
    # The paper's NVP*(MIPS) ablation: plain max-inner-product retrieval.
    "mips-baseline": {"buffer_capacity": 25, "device_name": "NVM-3",
                      "sigma": 0.1, "retrieval": "mips"},
    # Ideal digital store: no CiM noise anywhere in the retrieval path.
    "digital": {"buffer_capacity": 25, "device_name": "NVM-3", "sigma": 0.1,
                "on_cim": False},
    # Small-scale smoke configuration for demos and tests.
    "fast": {"buffer_capacity": 10, "device_name": "NVM-3", "sigma": 0.1,
             "tuning": {"steps": 6, "lr": 0.05}},
}


def _plain(value):
    """Recursively convert dataclasses/tuples to JSON-style dicts/lists."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _plain(getattr(value, f.name))
                for f in fields(value)}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


@dataclass(frozen=True)
class FrameworkConfig:
    """Everything that defines one NVCiM-PT configuration."""

    buffer_capacity: int = 25
    device_name: str = "NVM-3"
    sigma: float = 0.1                    # device variation (Table IV knob)
    retrieval: str = "ssa"                # "ssa" or "mips"
    mitigation: str = "none"              # none|swv|cxdnn|correctnet
    noise_aware: bool = True              # the paper's NT component
    code_dim: int = 48                    # autoencoder embedding size
    tuning: TuningConfig = field(default_factory=TuningConfig)
    k_selection: KSelectionConfig = field(default_factory=KSelectionConfig)
    noise_factors: tuple[float, float, float, float] = (1.0, 1.6, 1.6, 1.0)
    search: SearchConfig | None = None    # derived from `retrieval` if None
    on_cim: bool = True                   # False = ideal digital store
    vectorized: bool = True               # stacked TileBank vs per-tile sim
    seed: int = 0
    base_quantization: str | None = None  # None | "int8" | "int4"
    quantization_group_size: int = 32     # scale group along input channels

    def __post_init__(self):
        if self.buffer_capacity <= 0:
            raise ValueError("buffer_capacity must be positive")
        if self.base_quantization is not None:
            from ..llm.quantization import QUANTIZATION_BITS
            if self.base_quantization not in QUANTIZATION_BITS:
                raise ValueError(
                    f"base_quantization must be None or one of "
                    f"{sorted(QUANTIZATION_BITS)}, "
                    f"got {self.base_quantization!r}")
        if self.quantization_group_size <= 0:
            raise ValueError("quantization_group_size must be positive")
        if self.retrieval not in RETRIEVAL_REGISTRY:
            raise ValueError(
                f"retrieval must be one of {RETRIEVAL_REGISTRY.names()}, "
                f"got {self.retrieval!r}")
        if self.mitigation not in MITIGATION_REGISTRY:
            raise ValueError(
                f"mitigation must be one of {MITIGATION_REGISTRY.names()}, "
                f"got {self.mitigation!r}")

    def search_config(self) -> SearchConfig:
        if self.search is not None:
            return self.search
        return RETRIEVAL_REGISTRY[self.retrieval]

    def noise_config(self) -> NoiseInjectionConfig:
        f1, f2, f3, f4 = self.noise_factors
        return NoiseInjectionConfig(sigma=self.sigma, f1=f1, f2=f2, f3=f3,
                                    f4=f4, seed=self.seed)

    # ------------------------------------------------------------------
    # Serialization and presets (the serve layer's config surface).
    # ------------------------------------------------------------------
    def replace(self, **overrides) -> FrameworkConfig:
        """A copy of this config with the given fields replaced."""
        return replace(self, **overrides)

    def to_dict(self) -> dict:
        """JSON-compatible dict; inverse of :meth:`from_dict`."""
        return {f.name: _plain(getattr(self, f.name)) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> FrameworkConfig:
        """Build a config from a (possibly nested) plain dict.

        Nested sections (``tuning``, ``k_selection``, ``search``) may be
        given as dicts of their dataclass fields; omitted keys take the
        defaults.  Unknown keys are an error rather than silently dropped.
        """
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FrameworkConfig keys: {sorted(unknown)}")
        if isinstance(data.get("tuning"), dict):
            data["tuning"] = TuningConfig(**data["tuning"])
        if isinstance(data.get("k_selection"), dict):
            data["k_selection"] = KSelectionConfig(**data["k_selection"])
        if isinstance(data.get("search"), dict):
            search = dict(data["search"])
            for key in ("scales", "weights"):
                if key in search:
                    search[key] = tuple(search[key])
            data["search"] = SearchConfig(**search)
        if "noise_factors" in data:
            data["noise_factors"] = tuple(data["noise_factors"])
        return cls(**data)

    @classmethod
    def preset(cls, name: str, **overrides) -> FrameworkConfig:
        """A named experiment configuration, e.g. ``preset("table1")``.

        Keyword overrides are applied on top of the preset, so
        ``preset("table1", device_name="NVM-5")`` is one Table I cell.
        """
        try:
            base = dict(_PRESETS[name])
        except KeyError:
            raise KeyError(f"unknown preset {name!r}; "
                           f"available: {cls.available_presets()}") from None
        base.update(overrides)
        return cls.from_dict(base)

    @classmethod
    def available_presets(cls) -> list[str]:
        """Names accepted by :meth:`preset`."""
        return sorted(_PRESETS)


@dataclass
class OVTLibrary:
    """The trained artefacts: OVTs plus the autoencoder that encodes them."""

    ovts: list[VirtualTokens]
    autoencoder: OVTAutoencoder
    noise_aware: bool

    def __len__(self) -> int:
        return len(self.ovts)


def _token_rows(model: TinyCausalLM, tokenizer: Tokenizer,
                samples: list[Sample]) -> np.ndarray:
    """Stack normalised token-embedding rows (AE training data).

    Each sample's token matrix is normalised to unit peak, matching how
    matrices are scaled when encoded for storage/queries.
    """
    rows = []
    for sample in samples:
        matrix = model.token_embedding.weight.data[
            tokenizer.encode(sample.input_text)]
        rows.append(matrix / OVTAutoencoder.matrix_scale(matrix))
    return np.concatenate(rows, axis=0)


class OVTTrainingPipeline:
    """Training mode: stream -> buffer -> RS -> (noise-aware) PT -> library."""

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: FrameworkConfig | None = None):
        config = config if config is not None else FrameworkConfig()
        self.model = model
        self.tokenizer = tokenizer
        self.config = config
        self.buffer = DataBuffer(config.buffer_capacity)
        self.library = OVTLibrary(
            ovts=[],
            autoencoder=OVTAutoencoder(AutoencoderConfig(
                input_dim=model.config.d_model, code_dim=config.code_dim,
                seed=config.seed)),
            noise_aware=config.noise_aware,
        )
        self._epochs_completed = 0

    # ------------------------------------------------------------------
    def observe(self, sample: Sample) -> bool:
        """Add one sample; returns True when a training epoch just ran."""
        ids = self.tokenizer.encode(sample.input_text)
        embedding = self.model.embed_text_vector(ids)
        self.buffer.add(sample, embedding)
        if self.buffer.is_full:
            self._run_epoch()
            return True
        return False

    def run(self, samples: list[Sample]) -> OVTLibrary:
        """Stream all samples through the buffer; return the library."""
        for sample in samples:
            self.observe(sample)
        return self.library

    # ------------------------------------------------------------------
    def _run_epoch(self) -> None:
        samples, embeddings = self.buffer.take_all()
        selection = select_representatives(
            embeddings, k_config=self.config.k_selection,
            seed=self.config.seed + self._epochs_completed)
        representatives = [samples[i] for i in selection.representative_indices]
        remainder = [samples[i] for i in selection.remainder_indices()]

        tuning = replace(self.config.tuning,
                         seed=self.config.seed + self._epochs_completed)
        if self.config.noise_aware:
            trainer = NoiseAwareTrainer(self.model, self.tokenizer, tuning,
                                        self.config.noise_config())
        else:
            trainer = VanillaPromptTuner(self.model, self.tokenizer, tuning)
        fresh_ovts = []
        for representative in representatives:
            artifact = trainer.fit([representative])
            fresh_ovts.append(artifact.soft_prompt)
        self.library.ovts.extend(fresh_ovts)

        # Autoencoder upkeep (paper: the buffer remainder updates the AE).
        # The freshly trained OVTs join the update set so the encoder also
        # covers virtual-token statistics, not just word embeddings.
        pieces = [_token_rows(self.model, self.tokenizer,
                              remainder or representatives)]
        for ovt in fresh_ovts:
            pieces.append(ovt.matrix
                          / OVTAutoencoder.matrix_scale(ovt.matrix))
        rows = np.concatenate(pieces, axis=0)
        if self.library.autoencoder.is_trained:
            self.library.autoencoder.update(rows)
        else:
            self.library.autoencoder.fit(rows)
        self._epochs_completed += 1


class NVCiMDeployment:
    """Inference mode: the library programmed onto NVM, serving queries."""

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 library: OVTLibrary,
                 config: FrameworkConfig | None = None):
        config = config if config is not None else FrameworkConfig()
        if not library.ovts:
            raise ValueError("cannot deploy an empty OVT library")
        if not library.autoencoder.is_trained:
            raise ValueError("autoencoder must be trained before deployment")
        self.model = model
        self.tokenizer = tokenizer
        self.library = library
        self.config = config
        mitigation = (make_mitigation(config.mitigation)
                      if config.mitigation != "none" else None)
        self.engine = CiMSearchEngine(
            get_device(config.device_name),
            sigma=config.sigma,
            config=config.search_config(),
            mitigation=mitigation,
            on_cim=config.on_cim,
            vectorized=config.vectorized,
            rng=derive_rng(config.seed, "deployment", config.device_name,
                           config.mitigation, config.retrieval),
        )
        encoded = []
        self._scales: list[float] = []
        for ovt in library.ovts:
            codes, scale = library.autoencoder.encode_matrix(ovt.matrix)
            encoded.append(codes)
            self._scales.append(scale)
        self.engine.build(encoded)

    # ------------------------------------------------------------------
    def encode_query(self, input_text: str) -> np.ndarray:
        """User input -> token embedding rows -> autoencoder codes."""
        ids = self.tokenizer.encode(input_text)
        rows = self.model.token_embedding.weight.data[ids]
        codes, _ = self.library.autoencoder.encode_matrix(rows)
        return codes

    def retrieve(self, input_text: str) -> int:
        """Index of the OVT the scaled search picks for this input."""
        return self.engine.retrieve(self.encode_query(input_text))

    def restored_prompt(self, index: int) -> np.ndarray:
        """Read an OVT back from NVM and decode it to model space."""
        codes = self.engine.restore(index)
        return self.library.autoencoder.decode_matrix(codes,
                                                      self._scales[index])

    def answer(self, input_text: str,
               generation: GenerationConfig | None = None) -> str:
        """Full inference path: retrieve, restore, generate."""
        generation = generation or GenerationConfig(
            max_new_tokens=100, temperature=0.1, eos_id=self.tokenizer.eos_id)
        index = self.retrieve(input_text)
        prompt = self.restored_prompt(index)
        ids = self.tokenizer.encode(input_text)
        out = generate(self.model, ids, generation, soft_prompt=prompt)
        return self.tokenizer.decode(out)

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    SNAPSHOT_VERSION = 1

    def snapshot(self, *, include_state: bool = True) -> dict:
        """Versioned capture of the deployment's durable NVM state.

        With ``include_state`` ("raw" snapshots) the per-scale crossbar
        stores travel in full — conductances, counters, generator states
        — so :meth:`from_snapshot` brings the deployment back
        bit-identically without one programming pulse.  Without it (the
        "recipe" form) only cumulative counters travel: the deployment
        constructor re-programs deterministically from the library
        (its engine generator is derived purely from the config), and
        :meth:`restore_counters` re-seats the counters afterwards so the
        rebuild does not double-bill write pulses.
        """
        return {
            "version": self.SNAPSHOT_VERSION,
            "scales": [float(s) for s in self._scales],
            "engine": self.engine.snapshot(include_state=include_state),
        }

    def restore_counters(self, snap: dict) -> None:
        """Re-seat cumulative counters after a deterministic rebuild."""
        self._check_snapshot(snap)
        self.engine.restore_counters(snap["engine"])

    def _check_snapshot(self, snap: dict) -> None:
        if snap.get("version") != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported NVCiMDeployment snapshot version "
                f"{snap.get('version')!r}")
        if len(snap["scales"]) != len(self.library.ovts):
            raise ValueError(
                f"snapshot holds {len(snap['scales'])} OVTs, library has "
                f"{len(self.library.ovts)}")

    @classmethod
    def from_snapshot(cls, model: TinyCausalLM, tokenizer: Tokenizer,
                      library: OVTLibrary, config: FrameworkConfig,
                      snap: dict) -> "NVCiMDeployment":
        """Rebuild a deployment from a full snapshot without programming.

        ``model``/``tokenizer``/``library``/``config`` are supplied by
        the caller (the session snapshot carries the library and config;
        the model is ambient), and the NVM state — conductances, counters
        and generator states — comes back bit-identically from ``snap``.
        """
        if not library.ovts:
            raise ValueError("cannot restore a deployment without a library")
        self = object.__new__(cls)
        self.model = model
        self.tokenizer = tokenizer
        self.library = library
        self.config = config
        self._scales = [float(s) for s in snap.get("scales", ())]
        self._check_snapshot(snap)
        mitigation = (make_mitigation(config.mitigation)
                      if config.mitigation != "none" else None)
        self.engine = CiMSearchEngine.from_snapshot(
            snap["engine"],
            get_device(config.device_name),
            config=config.search_config(),
            mitigation=mitigation,
            rng=derive_rng(config.seed, "deployment", config.device_name,
                           config.mitigation, config.retrieval),
        )
        return self


class NVCiMPT:
    """Facade: continuous learning plus NVM-backed inference.

    Since the serving redesign this is a thin single-user wrapper over
    :class:`repro.serve.PromptServeEngine` — the engine generalises the
    same observe/answer loop to many users; this class keeps the original
    one-user API (and its exact behavior) for existing callers.
    """

    _FACADE_USER = 0

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: FrameworkConfig | None = None):
        from ..serve.engine import PromptServeEngine  # circular at import time
        self.model = model
        self.tokenizer = tokenizer
        self.config = config if config is not None else FrameworkConfig()
        self.engine = PromptServeEngine(model, tokenizer, self.config,
                                        max_sessions=1)
        self._session = self.engine.session(self._FACADE_USER)

    @property
    def pipeline(self) -> OVTTrainingPipeline:
        return self._session.pipeline

    @property
    def library(self) -> OVTLibrary:
        return self._session.library

    @property
    def _deployment(self) -> NVCiMDeployment | None:
        # Legacy introspection point: None whenever the crossbars are stale.
        return self._session._deployment

    def observe(self, sample: Sample) -> None:
        """Training mode: absorb one user interaction."""
        self._session.observe(sample)

    def answer(self, input_text: str,
               generation: GenerationConfig | None = None) -> str:
        """Inference mode: answer with the best stored OVT."""
        return self._session.answer(input_text, generation)
