"""Noise-aware Training (NT) — paper Eq. 4.

During prompt tuning, Gaussian noise is injected into the virtual tokens
with a standard deviation tiered on each element's normalised magnitude:

    S' = S + N * max|S|,   N_ij ~ Normal(0, (sigma * f_t)^2)

where tier t depends on |S_ij| / max|S|.  The tier factors mirror the
device physics of Table II: mid-range values land on the noisier middle
conductance levels, extreme values on the quieter end levels.  The noise is
a constant within each forward pass, so gradients flow straight through to
``S`` — the prompt learns to keep working under perturbation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ag import Tensor
from ..data.lamp import Sample
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from ..tuning import PromptArtifact, TuningConfig, VanillaPromptTuner
from ..utils import rng_from_seed

__all__ = ["NoiseInjectionConfig", "NoiseInjector", "NoiseAwareTrainer"]


@dataclass(frozen=True)
class NoiseInjectionConfig:
    """Eq. 4 parameters: global sigma and the four tier factors.

    Tier boundaries follow the paper exactly: |S^|>0.75 -> f1,
    0.5..0.75 -> f2, 0.25..0.5 -> f3, <0.25 -> f4.  The default factors
    are calibrated so the injected perturbation matches the measured
    value-domain error of an int16 bit-sliced store on a Table II device
    (restored-value rmse is about 2*sigma of the peak magnitude, MSB-cell
    dominated; mid-magnitude values sit on the noisier middle levels).
    """

    sigma: float = 0.1
    f1: float = 1.0    # |S^| > 0.75 (end levels, quieter)
    f2: float = 1.6    # 0.5 <= |S^| <= 0.75 (middle levels, noisier)
    f3: float = 1.6    # 0.25 <= |S^| < 0.5
    f4: float = 1.0    # |S^| < 0.25
    seed: int = 0

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        for factor in (self.f1, self.f2, self.f3, self.f4):
            if factor < 0:
                raise ValueError("noise factors must be non-negative")

    def factors_for(self, normalised: np.ndarray) -> np.ndarray:
        """Map |S^| magnitudes to their tier factor."""
        mags = np.abs(normalised)
        out = np.full(mags.shape, self.f4, dtype=np.float32)
        out[mags >= 0.25] = self.f3
        out[mags >= 0.5] = self.f2
        out[mags > 0.75] = self.f1
        return out


class NoiseInjector:
    """Callable transform applied to the prompt tensor each forward pass."""

    def __init__(self, config: NoiseInjectionConfig):
        self.config = config
        self._rng = rng_from_seed(config.seed)

    def __call__(self, prompt: Tensor) -> Tensor:
        values = prompt.data
        peak = float(np.abs(values).max())
        if peak == 0.0 or self.config.sigma == 0.0:
            return prompt
        normalised = values / peak
        stds = self.config.sigma * self.config.factors_for(normalised)
        noise = self._rng.normal(0.0, 1.0, values.shape).astype(np.float32)
        noise *= stds * peak
        return prompt + Tensor(noise)

    def sample_noise(self, values: np.ndarray) -> np.ndarray:
        """The noise matrix alone (used by tests and analysis)."""
        peak = float(np.abs(values).max())
        if peak == 0.0:
            return np.zeros_like(values, dtype=np.float32)
        stds = self.config.sigma * self.config.factors_for(values / peak)
        noise = self._rng.normal(0.0, 1.0, values.shape).astype(np.float32)
        return noise * stds * peak


class NoiseAwareTrainer:
    """Vanilla prompt tuning with Eq. 4 noise injection (the paper's NT)."""

    method_name = "noise-aware-pt"

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 tuning: TuningConfig = TuningConfig(),
                 noise: NoiseInjectionConfig = NoiseInjectionConfig()):
        self.model = model
        self.tokenizer = tokenizer
        self.tuning = tuning
        self.noise = noise

    def fit(self, samples: list[Sample]) -> PromptArtifact:
        injector = NoiseInjector(self.noise)
        tuner = VanillaPromptTuner(self.model, self.tokenizer, self.tuning)
        artifact = tuner.fit(samples, transform=injector)
        artifact.method = self.method_name
        return artifact
