"""Representative Selection (RS) — paper Eqs. 1-3.

When the data buffer fills, k-means clusters the sample embeddings into
domains (Eq. 1) with a buffer-size-adaptive ``k`` (Eq. 2); within each
cluster the sample closest (by cosine similarity) to the centroid is the
domain representative (Eq. 3; the paper prints ``argmin`` but a
representative must be the *most* central member, so we take the argmax —
noted as an erratum in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import derive_rng

__all__ = ["KSelectionConfig", "compute_k", "kmeans", "cosine_similarity",
           "select_representatives", "SelectionResult"]


@dataclass(frozen=True)
class KSelectionConfig:
    """Parameters of the adaptive cluster-count formula (Eq. 2)."""

    base_buffer: int = 10     # b0, the base threshold
    scale: float = 1.0        # s, the scale factor
    n_min: int = 2
    n_max: int = 8

    def __post_init__(self):
        if self.base_buffer <= 0:
            raise ValueError("base_buffer must be positive")
        if self.n_min < 1 or self.n_max < self.n_min:
            raise ValueError("need 1 <= n_min <= n_max")


def compute_k(buffer_size: int, config: KSelectionConfig = KSelectionConfig()) -> int:
    """Eq. 2: k = min(max(n_min + s*log2(bs/b0), n_min), n_max)."""
    if buffer_size <= 0:
        raise ValueError("buffer_size must be positive")
    grown = config.n_min + config.scale * np.log2(buffer_size / config.base_buffer)
    k = int(np.floor(min(max(grown, config.n_min), config.n_max)))
    return min(k, buffer_size)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two vectors (0 when either is zero)."""
    a = np.asarray(a, dtype=np.float64).reshape(-1)
    b = np.asarray(b, dtype=np.float64).reshape(-1)
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm == 0.0:
        return 0.0
    return float(a @ b / norm)


def kmeans(embeddings: np.ndarray, k: int, *, seed: int = 0,
           n_iters: int = 25) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means with k-means++ seeding.

    Returns (labels, centroids) with shapes (n,) and (k, d).
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.ndim != 2:
        raise ValueError("embeddings must be (n, d)")
    n = embeddings.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k={k} must be in [1, {n}]")
    rng = derive_rng(seed, "kmeans")

    # k-means++ initialisation
    centroids = np.empty((k, embeddings.shape[1]))
    first = int(rng.integers(0, n))
    centroids[0] = embeddings[first]
    closest_sq = np.sum((embeddings - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total == 0.0:
            centroids[i:] = embeddings[int(rng.integers(0, n))]
            break
        probs = closest_sq / total
        pick = int(rng.choice(n, p=probs))
        centroids[i] = embeddings[pick]
        closest_sq = np.minimum(
            closest_sq, np.sum((embeddings - centroids[i]) ** 2, axis=1))

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(n_iters):
        distances = ((embeddings[:, None, :] - centroids[None, :, :]) ** 2
                     ).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = embeddings[labels == j]
            if members.size:
                centroids[j] = members.mean(axis=0)
            else:  # re-seed an empty cluster at the farthest point
                distances_to_own = ((embeddings - centroids[labels]) ** 2
                                    ).sum(axis=1)
                centroids[j] = embeddings[int(distances_to_own.argmax())]
    return labels, centroids


@dataclass(frozen=True)
class SelectionResult:
    """Output of representative selection over one full buffer."""

    representative_indices: tuple[int, ...]
    labels: np.ndarray
    centroids: np.ndarray

    @property
    def k(self) -> int:
        return len(self.representative_indices)

    def remainder_indices(self) -> tuple[int, ...]:
        """Buffer indices *not* selected (used to update the autoencoder)."""
        chosen = set(self.representative_indices)
        return tuple(i for i in range(len(self.labels)) if i not in chosen)


def select_representatives(
    embeddings: np.ndarray,
    *,
    k: int | None = None,
    k_config: KSelectionConfig = KSelectionConfig(),
    seed: int = 0,
) -> SelectionResult:
    """Full RS pass: cluster the buffer and pick one sample per cluster."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    n = embeddings.shape[0]
    if k is None:
        k = compute_k(n, k_config)
    labels, centroids = kmeans(embeddings, k, seed=seed)
    representatives = []
    for j in range(k):
        members = np.flatnonzero(labels == j)
        if members.size == 0:
            continue
        sims = [cosine_similarity(embeddings[i], centroids[j]) for i in members]
        representatives.append(int(members[int(np.argmax(sims))]))
    return SelectionResult(tuple(representatives), labels, centroids)
