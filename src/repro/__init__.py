"""NVCiM-PT: an NVCiM-assisted prompt tuning framework for edge LLMs.

Reproduction of Qin et al., DATE 2025 (arXiv:2411.08244).  The public API
re-exports the pieces a downstream user needs: the framework itself
(:class:`~repro.core.NVCiMPT`), the model/dataset/device zoos, the prompt
tuning methods and the cost models.
"""

from .core import (
    FrameworkConfig,
    NVCiMDeployment,
    NVCiMPT,
    NoiseAwareTrainer,
    NoiseInjectionConfig,
    OVTLibrary,
    OVTTrainingPipeline,
)
from .data import (
    DataBuffer,
    available_datasets,
    build_corpus,
    build_tokenizer,
    make_dataset,
    make_user,
    make_users,
)
from .llm import (
    GenerationConfig,
    available_models,
    build_model,
    generate,
    load_pretrained_model,
)
from .nvm import available_devices, get_device

__version__ = "0.1.0"

__all__ = [
    "NVCiMPT", "FrameworkConfig", "OVTLibrary", "OVTTrainingPipeline",
    "NVCiMDeployment", "NoiseAwareTrainer", "NoiseInjectionConfig",
    "build_tokenizer", "build_corpus", "make_dataset", "available_datasets",
    "make_user", "make_users", "DataBuffer",
    "build_model", "load_pretrained_model", "available_models",
    "generate", "GenerationConfig",
    "get_device", "available_devices",
    "__version__",
]
