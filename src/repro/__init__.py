"""NVCiM-PT: an NVCiM-assisted prompt tuning framework for edge LLMs.

Reproduction of Qin et al., DATE 2025 (arXiv:2411.08244), grown into a
multi-user serving system.  The public API has two levels:

**Serving layer** (:mod:`repro.serve`) — the primary surface.  A
:class:`PromptServeEngine` owns one shared frozen base model and a bounded
LRU cache of per-user sessions, each holding that user's OVT library and
its lazily reprogrammed NVM deployment.  Training data arrives as
:class:`TuneRequest`s, queries as :class:`QueryRequest`s (singly or in
batches via ``submit_batch`` / ``answer_batch``), and every
:class:`QueryResponse` carries retrieval telemetry: the selected OVT, the
per-OVT similarity scores, and analytic CiM latency/energy estimates.
:class:`NVCiMPT` remains as the single-user facade over the same engine.

**Serving edge** (:mod:`repro.gateway`) — the network front.  A
:class:`PromptGateway` exposes the engine over HTTP (pure stdlib asyncio)
with bounded-queue admission control, pluggable round-admission policies,
deadline SLOs, and a worker thread driving the engine's continuous
batching; :class:`GatewayClient` is the pooled retrying client, and
:mod:`repro.gateway.traffic` generates Poisson/bursty Zipf-skewed load.

**Building blocks** — the framework pieces the engine composes:
:class:`OVTTrainingPipeline` / :class:`NVCiMDeployment`, the
model/dataset/device zoos, prompt-tuning methods and cost models.

Every pluggable axis is a string-keyed registry
(:class:`repro.utils.Registry`): models (``register_model``), NVM devices
(``register_device``), noise mitigations (``register_mitigation``) and
retrieval strategies (``register_retrieval``).  Configurations are plain
data: :meth:`FrameworkConfig.to_dict` / :meth:`FrameworkConfig.from_dict`
round-trip through JSON, and :meth:`FrameworkConfig.preset` names the
paper's experiment settings (``"table1"``, ``"table4"``, ...).
"""

from .core import (
    FrameworkConfig,
    NVCiMDeployment,
    NVCiMPT,
    NoiseAwareTrainer,
    NoiseInjectionConfig,
    OVTLibrary,
    OVTTrainingPipeline,
)
from .data import (
    DataBuffer,
    available_datasets,
    build_corpus,
    build_tokenizer,
    make_dataset,
    make_user,
    make_users,
)
from .gateway import (
    GatewayClient,
    GatewayConfig,
    PromptGateway,
)
from .llm import (
    GenerationConfig,
    available_models,
    build_model,
    generate,
    load_pretrained_model,
    register_model,
)
from .mitigation import available_mitigations, register_mitigation
from .nvm import available_devices, get_device, register_device
from .retrieval import available_retrievals, register_retrieval
from .serve import (
    PromptServeEngine,
    QueryRequest,
    QueryResponse,
    QueueFull,
    SessionSnapshot,
    SessionStore,
    ShardedPromptEngine,
    TuneRequest,
    TuneResponse,
    UserSession,
)
from .utils import Registry

__version__ = "0.2.0"

__all__ = [
    # Serving layer
    "PromptServeEngine", "ShardedPromptEngine", "UserSession", "QueueFull",
    "SessionSnapshot", "SessionStore",
    "TuneRequest", "TuneResponse", "QueryRequest", "QueryResponse",
    # Serving edge
    "PromptGateway", "GatewayConfig", "GatewayClient",
    # Framework
    "NVCiMPT", "FrameworkConfig", "OVTLibrary", "OVTTrainingPipeline",
    "NVCiMDeployment", "NoiseAwareTrainer", "NoiseInjectionConfig",
    # Data
    "build_tokenizer", "build_corpus", "make_dataset", "available_datasets",
    "make_user", "make_users", "DataBuffer",
    # Models and generation
    "build_model", "load_pretrained_model", "available_models",
    "register_model", "generate", "GenerationConfig",
    # Registries
    "Registry", "get_device", "available_devices", "register_device",
    "available_mitigations", "register_mitigation",
    "available_retrievals", "register_retrieval",
    "__version__",
]
